"""Ablation — the partitioning scaling factor sigma.

The paper fixes sigma = 0.4 as a "well-balanced trade-off". This sweep
quantifies the trade-off on the 1K-node synthetic workload: smaller sigma
means more partitions (robustness to overload, more replicas to place,
more network transfer); larger sigma means fewer, heavier sub-joins.
"""

import pytest

from _harness import nova_session, print_report, synthetic_1k
from repro.common.tables import render_table
from repro.core.partitioning import plan_partitions
from repro.evaluation.latency import latency_stats, matrix_distance
from repro.evaluation.overload import overload_percentage

SIGMAS = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


@pytest.mark.benchmark(group="ablation-sigma")
def test_sigma_sweep(benchmark, capsys):
    workload, latency = synthetic_1k(seed=11)

    def run_sweep():
        return {
            sigma: nova_session(workload, latency, seed=11, sigma=sigma)
            for sigma in SIGMAS
        }

    sessions = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    transfer = {}
    for sigma, session in sessions.items():
        stats = latency_stats(session.placement, matrix_distance(latency))
        total_transfer = sum(
            plan_partitions(r.left_rate, r.right_rate, sigma=sigma).network_transfer_rate
            for r in session.resolved.replicas
        )
        transfer[sigma] = total_transfer
        rows.append(
            [
                sigma,
                len(session.placement.sub_replicas),
                len(session.placement.nodes_used()),
                overload_percentage(session.placement, workload.topology),
                stats.p90,
                total_transfer,
                session.timings.physical_s,
            ]
        )
    print_report(
        capsys,
        render_table(
            ["sigma", "sub-joins", "hosts", "overload %", "p90 ms", "transfer t/s", "phase III s"],
            rows,
            precision=2,
            title="Ablation — sigma sweep (1K synthetic)",
        ),
    )

    # Monotonicity of the trade-off: partitions and transfer shrink as
    # sigma grows.
    subs = [row[1] for row in rows]
    assert subs == sorted(subs, reverse=True)
    transfers = [transfer[s] for s in SIGMAS]
    assert transfers == sorted(transfers, reverse=True)
    # The paper's default keeps zero overload on this workload.
    by_sigma = {row[0]: row[3] for row in rows}
    assert by_sigma[0.4] == 0.0
