"""Figure 6 — percentage of overloaded nodes vs node heterogeneity.

1000-node synthetic topology, 60/40 source/worker split, rates U(1, 200),
capacity distributions swept from near-uniform to exponential at constant
total capacity. Nova must stay at zero overloaded nodes across the sweep;
sink-based pins 100%; the WSN cluster/tree families are worst among the
other baselines; top-c is the best baseline.
"""

import pytest

from _harness import nova_session, plan_approaches, print_report
from repro.baselines.registry import available_baselines
from repro.common.tables import render_table
from repro.evaluation.overload import overload_percentage
from repro.topology.generators import heterogeneity_levels
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import heterogeneity_sweep

N_NODES = 1000


@pytest.mark.benchmark(group="fig06")
def test_fig06_overload_vs_heterogeneity(benchmark, capsys):
    instances = heterogeneity_sweep(N_NODES, heterogeneity_levels(), seed=11)
    latencies = {
        level.name: DenseLatencyMatrix.from_topology(workload.topology)
        for level, workload in instances
    }

    def run_nova_all_levels():
        return {
            level.name: nova_session(workload, latencies[level.name], seed=11)
            for level, workload in instances
        }

    sessions = benchmark.pedantic(run_nova_all_levels, rounds=1, iterations=1)

    rows = []
    nova_values = []
    sink_values = []
    per_approach = {name: [] for name in available_baselines()}
    for level, workload in instances:
        latency = latencies[level.name]
        row = [level.name, workload.capacity_cv]
        nova_pct = overload_percentage(sessions[level.name].placement, workload.topology)
        nova_values.append(nova_pct)
        row.append(nova_pct)
        results = plan_approaches(workload, latency, seed=11)
        for name in available_baselines():
            pct = overload_percentage(results[name].placement, workload.topology)
            per_approach[name].append(pct)
            if name == "sink-based":
                sink_values.append(pct)
            row.append(pct)
        rows.append(row)

    print_report(
        capsys,
        render_table(
            ["capacity dist", "CV", "nova"] + available_baselines(),
            rows,
            precision=1,
            title="Figure 6 — % overloaded nodes vs heterogeneity (1000-node synthetic)",
        ),
    )

    # Shape assertions from the paper.
    assert all(value == 0.0 for value in nova_values), "Nova must never overload"
    assert all(value == 100.0 for value in sink_values), "sink-based pins 100%"
    for level_index in range(len(instances)):
        assert per_approach["top-c"][level_index] <= per_approach["cl-tree-sf"][level_index]
        assert per_approach["source-based"][level_index] <= per_approach["cl-tree-sf"][level_index] + 25.0
