"""ASCII scatter rendering."""

import numpy as np
import pytest

from repro.common.ascii_plot import scatter


class TestScatter:
    def test_dimensions(self):
        points = np.random.default_rng(0).uniform(0, 1, (50, 2))
        text = scatter(points, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 13  # border + 10 rows + border + axis line
        assert all(len(line) == 42 for line in lines[:-1])

    def test_title(self):
        text = scatter(np.zeros((1, 2)), title="Figure 5")
        assert text.splitlines()[0] == "Figure 5"

    def test_clusters_render_densely(self):
        rng = np.random.default_rng(1)
        cluster = rng.normal((0, 0), 0.01, (200, 2))
        spread = rng.uniform(-10, 10, (5, 2))
        text = scatter(np.vstack([cluster, spread]), width=30, height=10)
        assert "#" in text or "@" in text  # dense cell present

    def test_labels_marked(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        text = scatter(points, labels={"sink": np.array([10.0, 10.0])})
        assert "S" in text

    def test_degenerate_single_point(self):
        text = scatter(np.array([[5.0, 5.0]]))
        assert "n=1" in text

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            scatter(np.zeros((3,)))
        with pytest.raises(ValueError):
            scatter(np.zeros((2, 2)), width=1)

    def test_axis_ranges_reported(self):
        points = np.array([[0.0, -5.0], [100.0, 5.0]])
        text = scatter(points)
        assert "x: [0.0, 100.0]" in text
        assert "y: [-5.0, 5.0]" in text
