"""Seeded RNG helpers."""

import numpy as np

from repro.common.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_generator_passes_through(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 2**31, size=8)
        b = ensure_rng(2).integers(0, 2**31, size=8)
        assert not (a == b).all()


class TestSpawnRng:
    def test_child_is_independent_stream(self):
        parent = ensure_rng(7)
        child = spawn_rng(parent)
        assert isinstance(child, np.random.Generator)
        assert child is not parent

    def test_spawn_is_deterministic_given_parent_state(self):
        a = spawn_rng(ensure_rng(7)).integers(0, 1000, size=5)
        b = spawn_rng(ensure_rng(7)).integers(0, 1000, size=5)
        assert (a == b).all()
