"""Unit helpers: validation and conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import (
    check_fraction,
    check_non_negative,
    check_positive,
    ms_to_seconds,
    seconds_to_ms,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_coerces_int(self):
        assert check_positive("x", 3) == 3.0
        assert isinstance(check_positive("x", 3), float)

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    @pytest.mark.parametrize("value", [-0.001, float("nan"), float("-inf")])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            check_non_negative("x", value)


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_fractions(self, value):
        assert check_fraction("sigma", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError, match="sigma"):
            check_fraction("sigma", value)


class TestConversions:
    def test_ms_to_seconds(self):
        assert ms_to_seconds(1500.0) == 1.5

    def test_seconds_to_ms(self):
        assert seconds_to_ms(0.25) == 250.0

    @given(st.floats(min_value=0, max_value=1e9))
    def test_roundtrip(self, value):
        assert math.isclose(seconds_to_ms(ms_to_seconds(value)), value, abs_tol=1e-6)
