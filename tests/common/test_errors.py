"""Exception hierarchy contracts."""

import pytest

from repro.common.errors import (
    DisconnectedTopologyError,
    EmbeddingError,
    InfeasiblePlacementError,
    JoinMatrixError,
    OptimizationError,
    PlanError,
    ReproError,
    SimulationError,
    TopologyError,
    UnknownNodeError,
    UnknownOperatorError,
    WorkloadError,
)

ALL_ERRORS = [
    DisconnectedTopologyError,
    EmbeddingError,
    InfeasiblePlacementError,
    JoinMatrixError,
    OptimizationError,
    PlanError,
    SimulationError,
    TopologyError,
    UnknownNodeError,
    UnknownOperatorError,
    WorkloadError,
]


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_all_derive_from_repro_error(error_cls):
    assert issubclass(error_cls, ReproError)


def test_unknown_node_keeps_id():
    error = UnknownNodeError("n42")
    assert error.node_id == "n42"
    assert "n42" in str(error)


def test_unknown_operator_keeps_id():
    error = UnknownOperatorError("join1")
    assert error.operator_id == "join1"


def test_infeasible_is_optimization_error():
    assert issubclass(InfeasiblePlacementError, OptimizationError)


def test_disconnected_is_topology_error():
    assert issubclass(DisconnectedTopologyError, TopologyError)
