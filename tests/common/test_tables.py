"""Text table rendering."""

import pytest

from repro.common.tables import format_value, render_series, render_table


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_large_float_scientific(self):
        assert "e" in format_value(1.5e9)

    def test_small_float_scientific(self):
        assert "e" in format_value(1.5e-7)

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_string_passthrough(self):
        assert format_value("nova") == "nova"

    def test_thousands_separator(self):
        assert format_value(123456.0) == "123,456.00"


class TestRenderTable:
    def test_alignment_and_structure(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        text = render_table(["x"], [[1]], title="Figure 6")
        assert text.splitlines()[0] == "Figure 6"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_series_rows(self):
        text = render_series("lat", [1, 2], [10.0, 20.0], "hour", "ms")
        assert "hour" in text and "ms" in text
        assert "10.00" in text and "20.00" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_series("s", [1], [1, 2])
