"""The shared churn-event wire codec: lines, batches, trace files."""

import json

import pytest

from repro.topology.dynamics import (
    AddSourceEvent,
    AddWorkerEvent,
    CapacityChangeEvent,
    CoordinateDriftEvent,
    DataRateChangeEvent,
    RemoveNodeEvent,
)
from repro.topology.event_codec import (
    ChurnTrace,
    EventDecodeError,
    TRACE_FORMAT_VERSION,
    TraceError,
    decode_batch,
    decode_event_dict,
    decode_event_line,
    encode_event_line,
    load_trace,
    parse_trace,
)

ALL_EVENTS = [
    AddWorkerEvent("w9", 150.0, {"n0": 3.5, "n1": 7.25}),
    AddSourceEvent("s9", 100.0, 42.0, "alpha", "s0", {"n0": 2.0}),
    RemoveNodeEvent("n3"),
    DataRateChangeEvent("s0", 88.5),
    CapacityChangeEvent("n1", 310.0),
    CoordinateDriftEvent("n2", {"n0": 11.0, "n4": 5.5}),
]


class TestEventLines:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: type(e).__name__)
    def test_round_trip_every_event_type(self, event):
        line = encode_event_line(event)
        assert "\n" not in line
        assert decode_event_line(line) == event

    def test_lines_are_plain_json_objects(self):
        payload = json.loads(encode_event_line(RemoveNodeEvent("n3")))
        assert payload == {"type": "remove_node", "node_id": "n3"}

    def test_invalid_json_carries_raw_line(self):
        with pytest.raises(EventDecodeError, match="invalid JSON") as exc:
            decode_event_line("{oops")
        assert exc.value.raw == "{oops"

    def test_non_object_payload_rejected(self):
        with pytest.raises(EventDecodeError, match="JSON object"):
            decode_event_line("[1, 2, 3]")

    def test_unknown_type_rejected_with_raw(self):
        line = '{"type": "teleport", "node_id": "n1"}'
        with pytest.raises(EventDecodeError, match="unknown churn event") as exc:
            decode_event_line(line)
        assert exc.value.raw == line

    def test_malformed_fields_rejected(self):
        with pytest.raises(EventDecodeError, match="malformed"):
            decode_event_dict({"type": "remove_node", "node": "wrong-key"})


class TestBatches:
    def test_accepts_events_object_and_bare_list(self):
        entries = [
            {"type": "data_rate_change", "node_id": "s0", "new_rate": 10.0}
        ]
        expected = [DataRateChangeEvent("s0", 10.0)]
        assert decode_batch({"events": entries}) == expected
        assert decode_batch(entries) == expected
        assert decode_batch({"events": []}) == []

    def test_non_list_events_rejected(self):
        with pytest.raises(EventDecodeError, match="must be a list"):
            decode_batch({"events": "nope"})


class TestTraceFiles:
    def trace_doc(self):
        return {
            "version": TRACE_FORMAT_VERSION,
            "workload": {"kind": "synthetic_opp", "nodes": 50, "seed": 1},
            "batches": [
                {"events": [
                    {"type": "capacity_change", "node_id": "n1",
                     "new_capacity": 200.0},
                    {"type": "remove_node", "node_id": "n2"},
                ]},
                [{"type": "data_rate_change", "node_id": "s0",
                  "new_rate": 55.0}],
            ],
        }

    def test_parse_trace_decodes_batches(self):
        trace = parse_trace(self.trace_doc())
        assert isinstance(trace, ChurnTrace)
        assert trace.workload["nodes"] == 50
        assert [len(batch) for batch in trace.batches] == [2, 1]
        assert trace.event_count == 3
        assert trace.batches[1] == [DataRateChangeEvent("s0", 55.0)]

    def test_parse_trace_rejects_other_versions(self):
        doc = self.trace_doc()
        doc["version"] = 99
        with pytest.raises(TraceError, match="unsupported trace format"):
            parse_trace(doc)

    def test_parse_trace_rejects_non_objects(self):
        with pytest.raises(TraceError, match="JSON object"):
            parse_trace(["not", "a", "trace"])

    def test_load_trace_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(self.trace_doc()))
        assert load_trace(path).event_count == 3

    def test_load_trace_missing_file_message(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(TraceError, match=f"trace file not found: {path}"):
            load_trace(path)

    def test_load_trace_invalid_json_message(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        with pytest.raises(TraceError, match="invalid trace file"):
            load_trace(path)


class TestCompatibility:
    def test_changeset_reexports_the_version(self):
        from repro.core.changeset import (
            TRACE_FORMAT_VERSION as reexported,
        )

        assert reexported == TRACE_FORMAT_VERSION

    def test_decode_errors_are_optimization_errors(self):
        from repro.common.errors import OptimizationError

        assert issubclass(TraceError, OptimizationError)
        assert issubclass(EventDecodeError, TraceError)
