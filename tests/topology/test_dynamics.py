"""Diurnal latency drift and churn events."""

import numpy as np
import pytest

from repro.topology.dynamics import (
    AddSourceEvent,
    DiurnalLatencyModel,
    RemoveNodeEvent,
    standard_event_suite,
)
from repro.topology.latency import DenseLatencyMatrix


def base_matrix(n=40, seed=0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 200, (n, 2))
    return DenseLatencyMatrix.from_coordinates([f"n{i}" for i in range(n)], coords)


class TestDiurnalModel:
    def test_snapshot_deterministic(self):
        model = DiurnalLatencyModel(base_matrix(), seed=1)
        a = model.at_hour(6)
        b = model.at_hour(6)
        assert np.allclose(a.matrix, b.matrix)

    def test_snapshots_differ_between_hours(self):
        model = DiurnalLatencyModel(base_matrix(), seed=1)
        assert not np.allclose(model.at_hour(3).matrix, model.at_hour(15).matrix)

    def test_diurnal_factor_peaks_in_evening(self):
        model = DiurnalLatencyModel(base_matrix(), amplitude=0.2, seed=0)
        assert model.diurnal_factor(20.0) == pytest.approx(1.2)
        assert model.diurnal_factor(8.0) == pytest.approx(0.8)

    def test_changed_entries_in_plausible_range(self):
        """Successive snapshots change a bounded set of entries, like the
        paper's 7k-14k changed entries on the 418-node RIPE subset."""
        model = DiurnalLatencyModel(base_matrix(40), churn_fraction=0.1, seed=0)
        changes = model.at_hour(1).changed_entries(model.at_hour(2), threshold_ms=10.0)
        total_pairs = 40 * 39 // 2
        assert 0 < changes < total_pairs

    def test_latencies_stay_positive(self):
        model = DiurnalLatencyModel(base_matrix(), jitter_ms=500.0, churn_fraction=1.0, seed=0)
        assert (model.at_hour(5).matrix >= 0).all()

    def test_hourly_snapshots_count(self):
        model = DiurnalLatencyModel(base_matrix(10), seed=0)
        assert len(model.hourly_snapshots(24)) == 24

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalLatencyModel(base_matrix(10), amplitude=1.5)

    def test_invalid_churn_fraction(self):
        with pytest.raises(ValueError):
            DiurnalLatencyModel(base_matrix(10), churn_fraction=-0.1)


class TestEventSuite:
    def test_standard_suite_has_five_events(self):
        events = standard_event_suite(
            existing_worker="w1",
            existing_source="s1",
            partner_source="s2",
            neighbor_latencies={"n1": 10.0},
        )
        assert len(events) == 5
        assert isinstance(events[0], AddSourceEvent)
        assert isinstance(events[1], RemoveNodeEvent)
        assert events[1].node_id == "s1"
        assert events[2].node_id == "w1"
