"""Diurnal latency drift and churn events."""

import numpy as np
import pytest

from repro.topology.dynamics import (
    AddSourceEvent,
    DiurnalLatencyModel,
    RemoveNodeEvent,
    standard_event_suite,
)
from repro.topology.latency import DenseLatencyMatrix


def base_matrix(n=40, seed=0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 200, (n, 2))
    return DenseLatencyMatrix.from_coordinates([f"n{i}" for i in range(n)], coords)


class TestDiurnalModel:
    def test_snapshot_deterministic(self):
        model = DiurnalLatencyModel(base_matrix(), seed=1)
        a = model.at_hour(6)
        b = model.at_hour(6)
        assert np.allclose(a.matrix, b.matrix)

    def test_snapshots_differ_between_hours(self):
        model = DiurnalLatencyModel(base_matrix(), seed=1)
        assert not np.allclose(model.at_hour(3).matrix, model.at_hour(15).matrix)

    def test_diurnal_factor_peaks_in_evening(self):
        model = DiurnalLatencyModel(base_matrix(), amplitude=0.2, seed=0)
        assert model.diurnal_factor(20.0) == pytest.approx(1.2)
        assert model.diurnal_factor(8.0) == pytest.approx(0.8)

    def test_changed_entries_in_plausible_range(self):
        """Successive snapshots change a bounded set of entries, like the
        paper's 7k-14k changed entries on the 418-node RIPE subset."""
        model = DiurnalLatencyModel(base_matrix(40), churn_fraction=0.1, seed=0)
        changes = model.at_hour(1).changed_entries(model.at_hour(2), threshold_ms=10.0)
        total_pairs = 40 * 39 // 2
        assert 0 < changes < total_pairs

    def test_latencies_stay_positive(self):
        model = DiurnalLatencyModel(base_matrix(), jitter_ms=500.0, churn_fraction=1.0, seed=0)
        assert (model.at_hour(5).matrix >= 0).all()

    def test_hourly_snapshots_count(self):
        model = DiurnalLatencyModel(base_matrix(10), seed=0)
        assert len(model.hourly_snapshots(24)) == 24

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalLatencyModel(base_matrix(10), amplitude=1.5)

    def test_invalid_churn_fraction(self):
        with pytest.raises(ValueError):
            DiurnalLatencyModel(base_matrix(10), churn_fraction=-0.1)


class TestEventSuite:
    def test_standard_suite_has_five_events(self):
        events = standard_event_suite(
            existing_worker="w1",
            existing_source="s1",
            partner_source="s2",
            neighbor_latencies={"n1": 10.0},
        )
        assert len(events) == 5
        assert isinstance(events[0], AddSourceEvent)
        assert isinstance(events[1], RemoveNodeEvent)
        assert events[1].node_id == "s1"
        assert events[2].node_id == "w1"


class TestEventHooks:
    def test_coalesce_keys(self):
        from repro.topology.dynamics import (
            AddWorkerEvent,
            CapacityChangeEvent,
            CoordinateDriftEvent,
            DataRateChangeEvent,
        )

        assert DataRateChangeEvent("s", 1.0).coalesce_key == ("rate", "s")
        assert CapacityChangeEvent("w", 1.0).coalesce_key == ("capacity", "w")
        assert CoordinateDriftEvent("x", {"a": 1.0}).coalesce_key == ("drift", "x")
        assert AddWorkerEvent("w", 1.0, {"a": 1.0}).coalesce_key is None
        assert RemoveNodeEvent("w").coalesce_key is None

    def test_validate_folds_state_forward(self):
        from repro.common.errors import UnknownNodeError
        from repro.topology.dynamics import AddWorkerEvent, BatchState, CapacityChangeEvent

        state = BatchState(nodes={"a"})
        AddWorkerEvent("w", 10.0, {"a": 1.0}).validate(state)
        assert "w" in state.nodes
        CapacityChangeEvent("w", 5.0).validate(state)  # sees the addition
        RemoveNodeEvent("w").validate(state)
        assert "w" not in state.nodes
        with pytest.raises(UnknownNodeError):
            CapacityChangeEvent("w", 5.0).validate(state)

    def test_validate_source_rules(self):
        from repro.common.errors import OptimizationError, UnknownOperatorError
        from repro.topology.dynamics import BatchState, DataRateChangeEvent

        state = BatchState(
            nodes={"s", "w"},
            operators={"s", "join"},
            sources={"s": "left"},
            join_streams={"left", "right"},
        )
        DataRateChangeEvent("s", 9.0).validate(state)
        with pytest.raises(UnknownOperatorError):
            DataRateChangeEvent("ghost", 9.0).validate(state)
        with pytest.raises(OptimizationError):
            DataRateChangeEvent("join", 9.0).validate(state)

    def test_add_source_requires_known_stream_and_partner(self):
        from repro.common.errors import OptimizationError, UnknownOperatorError
        from repro.topology.dynamics import BatchState

        state = BatchState(
            nodes={"p"}, operators={"p"}, sources={"p": "right"},
            join_streams={"left", "right"},
        )
        good = AddSourceEvent("new", 10.0, 5.0, "left", "p", {"p": 1.0})
        good.validate(state)
        assert state.sources["new"] == "left"
        with pytest.raises(OptimizationError):
            AddSourceEvent("x", 1.0, 1.0, "ghost", "p", {"p": 1.0}).validate(
                BatchState(nodes={"p"}, sources={"p": "right"},
                           join_streams={"left", "right"})
            )
        with pytest.raises(UnknownOperatorError):
            AddSourceEvent("x", 1.0, 1.0, "left", "ghost", {"p": 1.0}).validate(
                BatchState(nodes={"p"}, sources={"p": "right"},
                           join_streams={"left", "right"})
            )


class TestEventSerialization:
    def test_round_trip_all_types(self):
        from repro.topology.dynamics import (
            AddWorkerEvent,
            CapacityChangeEvent,
            CoordinateDriftEvent,
            DataRateChangeEvent,
            event_from_dict,
            event_to_dict,
        )

        events = [
            AddWorkerEvent("w", 100.0, {"a": 1.0, "b": 2.0}),
            AddSourceEvent("s", 50.0, 20.0, "left", "p", {"a": 1.0}),
            RemoveNodeEvent("gone"),
            DataRateChangeEvent("s", 42.0),
            CapacityChangeEvent("w", 7.0),
            CoordinateDriftEvent("x", {"a": 3.0}),
        ]
        for event in events:
            data = event_to_dict(event)
            assert isinstance(data["type"], str)
            assert event_from_dict(data) == event

    def test_unknown_type_rejected(self):
        from repro.common.errors import OptimizationError
        from repro.topology.dynamics import event_from_dict, event_to_dict

        with pytest.raises(OptimizationError):
            event_from_dict({"type": "teleport", "node_id": "x"})
        with pytest.raises(OptimizationError):
            event_to_dict(object())

    def test_malformed_payload_rejected(self):
        from repro.common.errors import OptimizationError
        from repro.topology.dynamics import event_from_dict

        with pytest.raises(OptimizationError):
            event_from_dict({"type": "remove_node", "wrong_field": "x"})
