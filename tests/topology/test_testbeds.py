"""Emulated measurement testbeds."""

import numpy as np
import pytest

from repro.common.errors import TopologyError
from repro.topology.testbeds import (
    TESTBED_SPECS,
    available_testbeds,
    load_testbed,
    ripe_atlas_subset,
)


class TestSpecs:
    def test_published_node_counts(self):
        assert TESTBED_SPECS["fit_iot_lab"].n_nodes == 433
        assert TESTBED_SPECS["ripe_atlas"].n_nodes == 723
        assert TESTBED_SPECS["planetlab"].n_nodes == 335
        assert TESTBED_SPECS["king"].n_nodes == 1740

    def test_paper_neighbor_counts(self):
        assert TESTBED_SPECS["fit_iot_lab"].vivaldi_neighbors == 20
        assert TESTBED_SPECS["ripe_atlas"].vivaldi_neighbors == 20
        assert TESTBED_SPECS["planetlab"].vivaldi_neighbors == 32
        assert TESTBED_SPECS["king"].vivaldi_neighbors == 32

    def test_available_testbeds(self):
        assert set(available_testbeds()) == set(TESTBED_SPECS)


class TestLoadTestbed:
    @pytest.mark.parametrize("name", ["fit_iot_lab", "planetlab"])
    def test_sizes_match_spec(self, name):
        testbed = load_testbed(name, seed=0)
        assert len(testbed.topology) == TESTBED_SPECS[name].n_nodes
        assert len(testbed.latency) == TESTBED_SPECS[name].n_nodes

    def test_unknown_raises(self):
        with pytest.raises(TopologyError, match="unknown testbed"):
            load_testbed("surely-not-real")

    def test_deterministic(self):
        a = load_testbed("planetlab", seed=3)
        b = load_testbed("planetlab", seed=3)
        assert np.allclose(a.latency.matrix, b.latency.matrix)

    def test_rtt_magnitudes_respect_scale_ordering(self):
        """FIT (campus) RTTs are far smaller than King (global DNS) RTTs."""
        fit = load_testbed("fit_iot_lab", seed=0)
        king = load_testbed("king", seed=0)
        assert np.median(fit.latency.matrix) < np.median(king.latency.matrix)

    def test_tivs_present(self):
        testbed = load_testbed("ripe_atlas", seed=0)
        assert testbed.latency.tiv_fraction(seed=1) > 0.0

    def test_cluster_assignment_covers_all_nodes(self):
        testbed = load_testbed("planetlab", seed=0)
        assert set(testbed.cluster_of) == set(testbed.topology.node_ids)


class TestSubset:
    def test_ripe_subset_size(self):
        subset = ripe_atlas_subset(418, seed=0)
        assert len(subset.topology) == 418
        assert len(subset.latency) == 418

    def test_subset_latencies_preserved(self):
        full = load_testbed("planetlab", seed=1)
        subset = full.subset(50, seed=2)
        u, v = subset.topology.node_ids[:2]
        assert subset.latency.latency(u, v) == full.latency.latency(u, v)

    def test_subset_out_of_range(self):
        full = load_testbed("planetlab", seed=1)
        with pytest.raises(TopologyError):
            full.subset(0)
        with pytest.raises(TopologyError):
            full.subset(10_000)
