"""Latency matrices and providers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DisconnectedTopologyError, TopologyError, UnknownNodeError
from repro.topology.latency import (
    CoordinateLatencyModel,
    DenseLatencyMatrix,
    stretch_statistics,
)
from repro.topology.model import Node, Topology


def chain_topology():
    topology = Topology()
    for name in "abc":
        topology.add_node(Node(name, 1.0))
    topology.add_link("a", "b", 10.0)
    topology.add_link("b", "c", 20.0)
    return topology


class TestDenseConstruction:
    def test_from_graph_shortest_paths(self):
        matrix = DenseLatencyMatrix.from_graph(chain_topology())
        assert matrix.latency("a", "c") == 30.0
        assert matrix.latency("a", "b") == 10.0

    def test_shortcut_preferred(self):
        topology = chain_topology()
        topology.add_link("a", "c", 12.0)
        matrix = DenseLatencyMatrix.from_graph(topology)
        assert matrix.latency("a", "c") == 12.0

    def test_disconnected_raises(self):
        topology = chain_topology()
        topology.add_node(Node("z", 1.0))
        with pytest.raises(DisconnectedTopologyError):
            DenseLatencyMatrix.from_graph(topology)

    def test_from_coordinates(self):
        matrix = DenseLatencyMatrix.from_coordinates(
            ["a", "b"], np.array([[0.0, 0.0], [3.0, 4.0]])
        )
        assert matrix.latency("a", "b") == pytest.approx(5.0)

    def test_from_coordinates_scale(self):
        matrix = DenseLatencyMatrix.from_coordinates(
            ["a", "b"], np.array([[0.0], [1.0]]), scale=2.5
        )
        assert matrix.latency("a", "b") == pytest.approx(2.5)

    def test_from_topology_prefers_links(self):
        matrix = DenseLatencyMatrix.from_topology(chain_topology())
        assert matrix.latency("a", "c") == 30.0

    def test_from_topology_without_anything_raises(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0))
        with pytest.raises(TopologyError):
            DenseLatencyMatrix.from_topology(topology)

    def test_symmetrized_and_zero_diagonal(self):
        raw = np.array([[1.0, 10.0], [20.0, 2.0]])
        matrix = DenseLatencyMatrix(["a", "b"], raw)
        assert matrix.latency("a", "b") == 15.0
        assert matrix.latency("a", "a") == 0.0

    def test_negative_entries_rejected(self):
        with pytest.raises(TopologyError):
            DenseLatencyMatrix(["a", "b"], np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TopologyError):
            DenseLatencyMatrix(["a", "a"], np.zeros((2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            DenseLatencyMatrix(["a"], np.zeros((2, 2)))


class TestDenseQueries:
    def test_unknown_node(self):
        matrix = DenseLatencyMatrix.from_graph(chain_topology())
        with pytest.raises(UnknownNodeError):
            matrix.latency("a", "zzz")

    def test_row(self):
        matrix = DenseLatencyMatrix.from_graph(chain_topology())
        row = matrix.row("a")
        assert row.tolist() == [0.0, 10.0, 30.0]

    def test_submatrix(self):
        matrix = DenseLatencyMatrix.from_graph(chain_topology())
        sub = matrix.submatrix(["c", "a"])
        assert sub.ids == ["c", "a"]
        assert sub.latency("c", "a") == 30.0

    def test_matrix_view_readonly(self):
        matrix = DenseLatencyMatrix.from_graph(chain_topology())
        with pytest.raises(ValueError):
            matrix.matrix[0, 1] = 99.0


class TestPerturbations:
    def test_inject_tivs_increases_entries(self):
        matrix = DenseLatencyMatrix.from_coordinates(
            [f"n{i}" for i in range(30)], np.random.default_rng(0).uniform(0, 100, (30, 2))
        )
        inflated = matrix.inject_tivs(0.3, seed=1)
        assert (inflated.matrix >= matrix.matrix - 1e-9).all()
        assert inflated.matrix.sum() > matrix.matrix.sum()

    def test_inject_tivs_zero_fraction_noop(self):
        matrix = DenseLatencyMatrix.from_coordinates(
            ["a", "b", "c"], np.array([[0.0, 0], [1, 0], [0, 1]])
        )
        assert np.allclose(matrix.inject_tivs(0.0, seed=1).matrix, matrix.matrix)

    def test_inject_tivs_creates_violations(self):
        rng = np.random.default_rng(3)
        matrix = DenseLatencyMatrix.from_coordinates(
            [f"n{i}" for i in range(40)], rng.uniform(0, 100, (40, 2))
        )
        assert matrix.tiv_fraction(seed=0) == 0.0  # Euclidean: no TIVs
        inflated = matrix.inject_tivs(0.2, inflation=(3.0, 5.0), seed=1)
        assert inflated.tiv_fraction(seed=0) > 0.0

    def test_invalid_fraction(self):
        matrix = DenseLatencyMatrix(["a", "b"], np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            matrix.inject_tivs(1.5)

    def test_with_noise_stays_non_negative(self):
        matrix = DenseLatencyMatrix(["a", "b"], np.array([[0.0, 1.0], [1.0, 0.0]]))
        noisy = matrix.with_noise(relative_std=2.0, seed=0)
        assert (noisy.matrix >= 0).all()

    def test_changed_entries_and_median_change(self):
        base = DenseLatencyMatrix(["a", "b", "c"], np.full((3, 3), 50.0))
        entries = base.matrix.copy()
        entries[0, 1] = entries[1, 0] = 80.0
        other = base.with_entries(entries)
        assert base.changed_entries(other, threshold_ms=10.0) == 1
        assert base.median_change(other, threshold_ms=10.0) == pytest.approx(30.0)

    def test_changed_entries_different_ids_raises(self):
        a = DenseLatencyMatrix(["a", "b"], np.zeros((2, 2)))
        b = DenseLatencyMatrix(["x", "y"], np.zeros((2, 2)))
        with pytest.raises(TopologyError):
            a.changed_entries(b, 1.0)


class TestCoordinateModel:
    def test_matches_dense(self):
        rng = np.random.default_rng(0)
        coords = rng.uniform(0, 100, (15, 2))
        ids = [f"n{i}" for i in range(15)]
        model = CoordinateLatencyModel(ids, coords)
        dense = DenseLatencyMatrix.from_coordinates(ids, coords)
        for u, v in [("n0", "n5"), ("n3", "n14")]:
            assert model.latency(u, v) == pytest.approx(dense.latency(u, v))

    def test_self_latency_zero(self):
        model = CoordinateLatencyModel(["a"], np.array([[1.0, 1.0]]))
        assert model.latency("a", "a") == 0.0

    def test_jitter_deterministic_and_symmetric(self):
        model = CoordinateLatencyModel(
            ["a", "b"], np.array([[0.0, 0.0], [10.0, 0.0]]), jitter_std=0.2, seed=5
        )
        assert model.latency("a", "b") == model.latency("b", "a")
        assert model.latency("a", "b") == model.latency("a", "b")

    def test_latencies_from_vector(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        model = CoordinateLatencyModel(["a", "b", "c"], coords)
        values = model.latencies_from("a", ["b", "c"])
        assert values == pytest.approx([5.0, 10.0])

    def test_densify_matches_scalar_queries(self):
        coords = np.random.default_rng(1).uniform(0, 10, (6, 2))
        ids = [f"n{i}" for i in range(6)]
        model = CoordinateLatencyModel(ids, coords, jitter_std=0.1, seed=2)
        dense = model.densify()
        for u in ids[:3]:
            for v in ids[3:]:
                assert dense.latency(u, v) == pytest.approx(model.latency(u, v))


class TestStretchStatistics:
    def test_zero_error_for_identical(self):
        matrix = DenseLatencyMatrix(["a", "b"], np.array([[0.0, 5.0], [5.0, 0.0]]))
        stats = stretch_statistics(matrix, matrix)
        assert stats["mae_ms"] == 0.0
        assert stats["p90_relative_error"] == 0.0

    def test_known_error(self):
        real = DenseLatencyMatrix(["a", "b"], np.array([[0.0, 10.0], [10.0, 0.0]]))
        est = DenseLatencyMatrix(["a", "b"], np.array([[0.0, 15.0], [15.0, 0.0]]))
        stats = stretch_statistics(est, real)
        assert stats["mae_ms"] == pytest.approx(5.0)
        assert stats["median_relative_error"] == pytest.approx(0.5)


@given(
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_coordinate_matrices_satisfy_triangle_inequality(n, seed):
    """Euclidean-induced latency matrices never violate the triangle inequality."""
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 100, (n, 2))
    matrix = DenseLatencyMatrix.from_coordinates([f"n{i}" for i in range(n)], coords).matrix
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-6
