"""Topology model: nodes, links, graph utilities."""

import numpy as np
import pytest

from repro.common.errors import TopologyError, UnknownNodeError
from repro.topology.model import Link, Node, NodeRole, Topology


def small_topology():
    topology = Topology()
    topology.add_node(Node("a", 10.0, NodeRole.SOURCE))
    topology.add_node(Node("b", 20.0))
    topology.add_node(Node("c", 30.0, NodeRole.SINK))
    topology.add_link("a", "b", 5.0)
    topology.add_link("b", "c", 7.0, bandwidth=100.0)
    return topology


class TestNode:
    def test_defaults(self):
        node = Node("x", 5.0)
        assert node.role == NodeRole.WORKER
        assert node.region is None

    def test_role_coercion_from_string(self):
        assert Node("x", 1.0, "sink").role == NodeRole.SINK

    def test_rejects_empty_id(self):
        with pytest.raises(TopologyError):
            Node("", 1.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            Node("x", -1.0)

    def test_zero_capacity_allowed(self):
        assert Node("x", 0.0).capacity == 0.0


class TestLink:
    def test_other_endpoint(self):
        link = Link("u", "v", 3.0)
        assert link.other("u") == "v"
        assert link.other("v") == "u"

    def test_other_unknown_raises(self):
        with pytest.raises(UnknownNodeError):
            Link("u", "v", 3.0).other("w")

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link("u", "u", 1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link("u", "v", -1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link("u", "v", 1.0, bandwidth=0.0)


class TestTopologyConstruction:
    def test_duplicate_node_rejected(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0))
        with pytest.raises(TopologyError, match="duplicate"):
            topology.add_node(Node("a", 2.0))

    def test_link_requires_both_nodes(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0))
        with pytest.raises(UnknownNodeError):
            topology.add_link("a", "missing", 1.0)

    def test_len_and_contains(self):
        topology = small_topology()
        assert len(topology) == 3
        assert "a" in topology
        assert "zz" not in topology

    def test_remove_node_drops_links(self):
        topology = small_topology()
        topology.remove_node("b")
        assert "b" not in topology
        assert topology.neighbors("a") == []
        assert topology.num_links() == 0

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownNodeError):
            small_topology().remove_node("zzz")


class TestTopologyQueries:
    def test_roles(self):
        topology = small_topology()
        assert [n.node_id for n in topology.sources()] == ["a"]
        assert [n.node_id for n in topology.sinks()] == ["c"]
        assert [n.node_id for n in topology.workers()] == ["b"]

    def test_neighbors_and_degree(self):
        topology = small_topology()
        assert topology.neighbors("b") == ["a", "c"]
        assert topology.degree("b") == 2

    def test_links_iterated_once(self):
        topology = small_topology()
        links = list(topology.links())
        assert len(links) == 2

    def test_link_lookup(self):
        topology = small_topology()
        assert topology.link("b", "a").latency_ms == 5.0
        assert topology.has_link("a", "b")
        assert not topology.has_link("a", "c")
        with pytest.raises(TopologyError):
            topology.link("a", "c")

    def test_total_capacity(self):
        assert small_topology().total_capacity() == 60.0


class TestConnectivity:
    def test_connected(self):
        assert small_topology().is_connected()

    def test_disconnected(self):
        topology = small_topology()
        topology.add_node(Node("lonely", 1.0))
        assert not topology.is_connected()

    def test_single_node_connected(self):
        topology = Topology()
        topology.add_node(Node("only", 1.0))
        assert topology.is_connected()


class TestPositions:
    def test_positions_roundtrip(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0), position=[1.0, 2.0])
        assert np.allclose(topology.position("a"), [1.0, 2.0])

    def test_has_positions_requires_all(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0), position=[0.0, 0.0])
        topology.add_node(Node("b", 1.0))
        assert not topology.has_positions()

    def test_positions_array_order(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0), position=[0.0, 0.0])
        topology.add_node(Node("b", 1.0), position=[3.0, 4.0])
        ids, points = topology.positions_array()
        assert ids == ["a", "b"]
        assert np.allclose(points[1], [3.0, 4.0])

    def test_missing_position_raises(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0))
        with pytest.raises(TopologyError):
            topology.position("a")

    def test_invalid_position_rejected(self):
        topology = Topology()
        topology.add_node(Node("a", 1.0))
        with pytest.raises(TopologyError):
            topology.set_position("a", [])


class TestExportAndCopy:
    def test_to_networkx(self):
        graph = small_topology().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph["a"]["b"]["latency"] == 5.0

    def test_copy_is_independent(self):
        topology = small_topology()
        clone = topology.copy()
        clone.remove_node("b")
        assert "b" in topology
        assert "b" not in clone

    def test_copy_preserves_capacity_changes_isolation(self):
        topology = small_topology()
        clone = topology.copy()
        clone.node("a").capacity = 999.0
        assert topology.node("a").capacity == 10.0
