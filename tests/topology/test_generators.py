"""Synthetic topology generators and capacity samplers."""

import numpy as np
import pytest

from repro.common.rng import ensure_rng
from repro.topology.generators import (
    coefficient_of_variation,
    edge_fog_cloud_topology,
    exponential_capacities,
    gaussian_cluster_positions,
    gaussian_cluster_topology,
    heterogeneity_levels,
    lognormal_capacities,
    random_geometric_link_topology,
    sample_capacities,
    uniform_capacities,
)
from repro.topology.model import NodeRole


class TestCapacitySamplers:
    def test_uniform_range(self):
        values = uniform_capacities(1, 200)(1000, ensure_rng(0))
        assert values.min() >= 1.0 and values.max() <= 200.0

    def test_exponential_clipped(self):
        values = exponential_capacities(1, 1000)(5000, ensure_rng(0))
        assert values.min() >= 1.0 and values.max() <= 1000.0

    def test_lognormal_positive(self):
        values = lognormal_capacities()(1000, ensure_rng(0))
        assert (values > 0).all()

    def test_sample_capacities_normalizes_total(self):
        values = sample_capacities(uniform_capacities(), 100, ensure_rng(0), total_capacity=5000.0)
        assert values.sum() == pytest.approx(5000.0, rel=0.05)

    def test_sample_capacities_minimum_enforced(self):
        values = sample_capacities(exponential_capacities(), 100, ensure_rng(0), minimum=2.0)
        assert values.min() >= 2.0

    def test_sample_capacities_rejects_zero_n(self):
        with pytest.raises(ValueError):
            sample_capacities(uniform_capacities(), 0, ensure_rng(0))


class TestHeterogeneityLevels:
    def test_cv_increases_overall(self):
        """The sweep should span low to high CV (first < last)."""
        rng = ensure_rng(0)
        levels = heterogeneity_levels()
        cvs = [
            coefficient_of_variation(
                sample_capacities(level.sampler, 2000, ensure_rng(1), total_capacity=200000)
            )
            for level in levels
        ]
        assert cvs[0] < cvs[-1]
        assert len(levels) >= 4

    def test_cv_of_constant_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_cv_of_zero_mean(self):
        assert coefficient_of_variation([0.0, 0.0]) == 0.0


class TestGaussianClusterPositions:
    def test_within_box(self):
        positions = gaussian_cluster_positions(500, 8, ensure_rng(0))
        assert positions[:, 0].min() >= 0.0 and positions[:, 0].max() <= 100.0
        assert positions[:, 1].min() >= -50.0 and positions[:, 1].max() <= 50.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gaussian_cluster_positions(0, 3, ensure_rng(0))
        with pytest.raises(ValueError):
            gaussian_cluster_positions(5, 0, ensure_rng(0))

    def test_clustered_structure(self):
        """Points should be denser than uniform: mean nearest-neighbour
        distance is far below the uniform expectation for tight clusters."""
        positions = gaussian_cluster_positions(400, 4, ensure_rng(2), cluster_std=1.0)
        sample = positions[:100]
        nn = []
        for i in range(len(sample)):
            distances = np.linalg.norm(sample - sample[i], axis=1)
            distances[i] = np.inf
            nn.append(distances.min())
        assert np.mean(nn) < 3.0


class TestGaussianClusterTopology:
    def test_size_and_positions(self):
        topology = gaussian_cluster_topology(50, seed=0)
        assert len(topology) == 50
        assert topology.has_positions()
        assert topology.num_links() == 0

    def test_deterministic(self):
        a = gaussian_cluster_topology(20, seed=7)
        b = gaussian_cluster_topology(20, seed=7)
        assert np.allclose(a.positions_array()[1], b.positions_array()[1])

    def test_total_capacity_controlled(self):
        topology = gaussian_cluster_topology(40, total_capacity=4000.0, seed=0)
        assert topology.total_capacity() == pytest.approx(4000.0, rel=0.05)


class TestEdgeFogCloud:
    def test_structure(self):
        topology = edge_fog_cloud_topology(n_regions=3, sources_per_region=2, seed=0)
        assert len(topology.sources()) == 6
        assert len(topology.sinks()) == 1
        assert topology.is_connected()

    def test_roles_present(self):
        topology = edge_fog_cloud_topology(seed=0)
        assert topology.nodes_with_role(NodeRole.CLOUD)
        assert topology.nodes_with_role(NodeRole.GATEWAY)
        assert topology.nodes_with_role(NodeRole.WORKER)

    def test_deterministic_latencies(self):
        a = edge_fog_cloud_topology(seed=5)
        b = edge_fog_cloud_topology(seed=5)
        la = sorted(l.latency_ms for l in a.links())
        lb = sorted(l.latency_ms for l in b.links())
        assert la == lb


class TestRandomGeometricLinkTopology:
    def test_connected(self):
        topology = random_geometric_link_topology(60, connection_radius=15.0, seed=1)
        assert topology.is_connected()
        assert topology.num_links() >= 59  # at least a spanning structure

    def test_small_radius_still_connected(self):
        topology = random_geometric_link_topology(30, connection_radius=2.0, seed=3)
        assert topology.is_connected()

    def test_link_latency_positive(self):
        topology = random_geometric_link_topology(30, seed=2)
        assert all(l.latency_ms > 0 for l in topology.links())
