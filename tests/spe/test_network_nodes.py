"""Network transport and processing nodes."""

import pytest

from repro.common.errors import SimulationError
from repro.spe.events import EventQueue
from repro.spe.network import Network
from repro.spe.nodes import ProcessingNode


def distance(u, v):
    return 100.0  # ms


class TestNetwork:
    def test_latency_applied(self):
        events = EventQueue()
        network = Network(events, distance)
        arrivals = []
        network.send("a", "b", "payload", lambda p: arrivals.append((events.now, p)))
        events.run(until=1.0)
        assert arrivals == [(0.1, "payload")]

    def test_local_delivery_immediate(self):
        events = EventQueue()
        network = Network(events, distance)
        arrivals = []
        network.send("a", "a", "x", arrivals.append)
        assert arrivals == ["x"]

    def test_transfers_counted(self):
        events = EventQueue()
        network = Network(events, distance)
        network.send("a", "b", 1, lambda p: None)
        network.send("a", "a", 2, lambda p: None)
        assert network.transfers == 2

    def test_egress_bandwidth_queues(self):
        """Two back-to-back sends over a 10 tuples/s uplink serialize."""
        events = EventQueue()
        network = Network(events, distance, egress_bandwidth={"a": 10.0})
        arrivals = []
        network.send("a", "b", 1, lambda p: arrivals.append(events.now))
        network.send("a", "b", 2, lambda p: arrivals.append(events.now))
        events.run(until=10.0)
        assert arrivals[0] == pytest.approx(0.1 + 0.1)  # serialization + latency
        assert arrivals[1] == pytest.approx(0.2 + 0.1)

    def test_unlimited_bandwidth_parallel(self):
        events = EventQueue()
        network = Network(events, distance)
        arrivals = []
        for i in range(3):
            network.send("a", "b", i, lambda p: arrivals.append(events.now))
        events.run(until=1.0)
        assert arrivals == [0.1, 0.1, 0.1]


class TestProcessingNode:
    def test_service_time(self):
        events = EventQueue()
        node = ProcessingNode("n", capacity=10.0, events=events)
        assert node.service_time == 0.1

    def test_fifo_backlog(self):
        events = EventQueue()
        node = ProcessingNode("n", capacity=10.0, events=events)
        completions = []
        for _ in range(3):
            node.process(lambda: completions.append(events.now))
        events.run(until=10.0)
        assert completions == pytest.approx([0.1, 0.2, 0.3])
        assert node.processed == 3

    def test_queue_depth(self):
        events = EventQueue()
        node = ProcessingNode("n", capacity=1.0, events=events)
        for _ in range(5):
            node.process(lambda: None)
        assert node.queue_depth_s() == pytest.approx(5.0)
        events.run(until=100.0)
        assert node.queue_depth_s() == 0.0

    def test_idle_node_serves_immediately(self):
        events = EventQueue()
        node = ProcessingNode("n", capacity=100.0, events=events)
        done = []
        events.schedule(1.0, lambda: node.process(lambda: done.append(events.now)))
        events.run(until=2.0)
        assert done == pytest.approx([1.01])

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            ProcessingNode("n", capacity=0.0, events=EventQueue())
