"""Simulator tuple types."""

import pytest

from repro.spe.tuples import JoinResult, SimTuple


def tup(event_time, created_at=None, key="k", stream="L"):
    return SimTuple(
        stream=stream,
        key=key,
        event_time=event_time,
        created_at=created_at if created_at is not None else event_time,
        source="s",
    )


class TestSimTuple:
    def test_window_index(self):
        assert tup(0.05).window_index(0.1) == 0
        assert tup(0.15).window_index(0.1) == 1
        # Exact boundaries are subject to float representation; mid-window
        # timestamps are unambiguous.
        assert tup(1.05).window_index(0.1) == 10

    def test_window_index_large_window(self):
        assert tup(59.0).window_index(60.0) == 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            tup(0.0).key = "other"


class TestJoinResult:
    def test_created_at_is_younger_constituent(self):
        left = tup(0.0, created_at=0.0)
        right = tup(0.2, created_at=0.2, stream="R")
        result = JoinResult.of(left, right, window=0)
        assert result.created_at == 0.2
        assert result.key == left.key
        assert result.window == 0

    def test_symmetric(self):
        left = tup(0.5, stream="L")
        right = tup(0.1, stream="R")
        result = JoinResult.of(left, right, window=3)
        assert result.created_at == 0.5
        assert result.left is left and result.right is right
