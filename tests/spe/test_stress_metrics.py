"""Stress injection and simulation metrics."""

import numpy as np
import pytest

from repro.evaluation.latency import LatencyStats
from repro.spe.metrics import SimulationReport
from repro.spe.stress import stress_nodes, stress_sources
from repro.topology.model import Node, NodeRole, Topology


def topology_with_sources():
    topology = Topology()
    topology.add_node(Node("s1", 10.0, NodeRole.SOURCE))
    topology.add_node(Node("s2", 10.0, NodeRole.SOURCE))
    topology.add_node(Node("w1", 10.0, NodeRole.WORKER))
    return topology


class TestStress:
    def test_stress_sources_targets_sources_only(self):
        factors = stress_sources(topology_with_sources(), 0.5)
        assert factors == {"s1": 0.5, "s2": 0.5}

    def test_stress_nodes_explicit(self):
        assert stress_nodes(["a", "b"], 0.25) == {"a": 0.25, "b": 0.25}

    @pytest.mark.parametrize("factor", [0.0, 1.5, -1.0])
    def test_invalid_factor(self, factor):
        with pytest.raises(ValueError):
            stress_sources(topology_with_sources(), factor)
        with pytest.raises(ValueError):
            stress_nodes(["a"], factor)


def make_report(arrivals, latencies, duration=10.0):
    arrivals = np.asarray(arrivals, dtype=float)
    latencies = np.asarray(latencies, dtype=float)
    return SimulationReport(
        duration_s=duration,
        results_delivered=len(arrivals),
        tuples_emitted=100,
        network_transfers=200,
        latency=LatencyStats.from_values(latencies),
        latencies_ms=latencies,
        arrival_times_s=arrivals,
        node_processed={"n": 5},
        node_backlog_s={"n": 0.0},
    )


class TestSimulationReport:
    def test_throughput(self):
        report = make_report([1.0, 2.0], [10.0, 20.0])
        assert report.throughput_per_s == pytest.approx(0.2)

    def test_throughput_zero_duration(self):
        report = make_report([], [], duration=10.0)
        report = SimulationReport(
            duration_s=0.0,
            results_delivered=0,
            tuples_emitted=0,
            network_transfers=0,
            latency=LatencyStats.from_values([]),
            latencies_ms=np.array([]),
            arrival_times_s=np.array([]),
            node_processed={},
            node_backlog_s={},
        )
        assert report.throughput_per_s == 0.0

    def test_latency_trend_buckets(self):
        arrivals = [0.5, 1.5, 8.5]
        latencies = [10.0, 30.0, 50.0]
        trend = make_report(arrivals, latencies).latency_trend(buckets=10)
        assert trend[0] == (1.0, 10.0)
        assert trend[1] == (2.0, 30.0)
        assert (9.0, 50.0) in trend

    def test_latency_trend_empty(self):
        assert make_report([], []).latency_trend() == []

    def test_cumulative_delivery_monotone(self):
        arrivals = [0.5, 1.5, 2.5, 9.0]
        cumulative = make_report(arrivals, [1.0] * 4).cumulative_delivery(buckets=5)
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_cumulative_delivery_empty(self):
        assert make_report([], []).cumulative_delivery() == []
