"""Join-semantics invariants of the simulator.

The key property: given enough capacity and lateness budget, the set of
results is a function of the *data*, not of the placement — partitioned,
merged, or centralized executions of the same join must deliver the same
number of results (every (left, right) in-window pair exactly once).
"""

import pytest

from repro.baselines.sink_based import SinkBasedPlacement
from repro.baselines.top_c import TopCPlacement
from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.spe.deployment import Deployment, SimulationConfig
from repro.topology.model import Node, Topology
from repro.workloads.debs import debs_workload


def generous_workload(sigma, seed=3):
    """A DEBS workload on a cluster so big nothing ever queues."""
    workload = debs_workload(rate_hz=20.0, seed=seed)
    for node in workload.topology.nodes():
        node.capacity = 1e6
    config = NovaConfig(seed=seed, sigma=sigma)
    session = Nova(config).optimize(
        workload.topology, workload.plan, workload.matrix, latency=workload.latency
    )
    return workload, session.placement


def run(workload, placement, duration=4.0, seed=11):
    """Run with a zero-latency network so result counts cannot differ
    through in-flight tail effects at the simulation horizon."""
    config = SimulationConfig(
        window_s=0.1, duration_s=duration, seed=seed, allowed_lateness_s=3.0
    )
    return Deployment(
        workload.topology, workload.plan, placement, lambda u, v: 0.0, config
    ).run()


class TestPlacementInvariance:
    def test_partitioned_equals_centralized(self):
        """Nova's partitioned grid (sigma=0.2 -> many cells) delivers the
        same result count as the sink-based single-node execution."""
        workload, nova_placement = generous_workload(sigma=0.2)
        sink_placement = SinkBasedPlacement().place(
            workload.topology, workload.plan, workload.matrix
        )
        nova_report = run(workload, nova_placement)
        sink_report = run(workload, sink_placement)
        assert nova_report.results_delivered == sink_report.results_delivered
        assert nova_report.results_delivered > 0

    def test_sigma_variants_agree(self):
        workload, coarse = generous_workload(sigma=1.0)
        _, fine = generous_workload(sigma=0.1)
        assert run(workload, coarse).results_delivered == run(
            workload, fine
        ).results_delivered

    def test_topc_agrees(self):
        workload, nova_placement = generous_workload(sigma=0.5)
        topc = TopCPlacement().place(workload.topology, workload.plan, workload.matrix)
        assert run(workload, topc).results_delivered == run(
            workload, nova_placement
        ).results_delivered


class TestResultVolume:
    def test_matches_analytic_expectation_order(self):
        """With both sources at rate r and window w, each window holds
        about r*w tuples per side, so results per region per second are
        about r^2 * w; the simulated count must be within 2x of that."""
        workload, placement = generous_workload(sigma=1.0)
        duration = 4.0
        report = run(workload, placement, duration=duration)
        rate, window = 20.0, 0.1
        expected = len(workload.regions) * rate * rate * window * duration
        assert 0.5 * expected <= report.results_delivered <= 2.0 * expected

    def test_no_results_without_matching_regions(self):
        """Forbidding every pair yields an empty placement -> no results."""
        workload = debs_workload(rate_hz=20.0, seed=3)
        placement = SinkBasedPlacement().place(
            workload.topology, workload.plan, workload.matrix
        )
        # Strip all sub-replicas: no joins deployed, no results.
        placement.sub_replicas = []
        report = run(workload, placement)
        assert report.results_delivered == 0
