"""Runtime operators: join matching semantics, sink recording, routes."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.spe.events import EventQueue
from repro.spe.network import Network
from repro.spe.nodes import ProcessingNode
from repro.spe.operators import LEFT, RIGHT, PartitionRoute, RuntimeJoin, RuntimeSink
from repro.spe.tuples import JoinResult, SimTuple


def make_join(events, window_s=1.0, grace=10):
    network = Network(events, lambda u, v: 0.0)
    node = ProcessingNode("host", capacity=1e6, events=events)
    sink_node = ProcessingNode("sink", capacity=1e6, events=events)
    sink = RuntimeSink("sink", sink_node, events)
    join = RuntimeJoin(
        sub_id="r@host",
        node=node,
        network=network,
        events=events,
        window_s=window_s,
        sink_node="sink",
        deliver_result=sink.on_result,
        window_grace=grace,
    )
    return join, sink


def tup(stream, key, t, source="s"):
    return SimTuple(stream=stream, key=key, event_time=t, created_at=t, source=source)


class TestJoinMatching:
    def test_matching_pair_produces_result(self):
        events = EventQueue()
        join, sink = make_join(events)
        join.own_cell(0, 0)
        join.on_tuple(LEFT, 0, tup("L", "k", 0.1))
        join.on_tuple(RIGHT, 0, tup("R", "k", 0.2))
        events.run(until=1.0)
        assert sink.delivered == 1

    def test_key_mismatch_no_result(self):
        events = EventQueue()
        join, sink = make_join(events)
        join.own_cell(0, 0)
        join.on_tuple(LEFT, 0, tup("L", "k1", 0.1))
        join.on_tuple(RIGHT, 0, tup("R", "k2", 0.2))
        events.run(until=1.0)
        assert sink.delivered == 0

    def test_window_boundary_separates(self):
        events = EventQueue()
        join, sink = make_join(events, window_s=1.0)
        join.own_cell(0, 0)
        join.on_tuple(LEFT, 0, tup("L", "k", 0.9))
        events.schedule(1.5, lambda: join.on_tuple(RIGHT, 0, tup("R", "k", 1.5)))
        events.run(until=3.0)
        assert sink.delivered == 0  # different tumbling windows

    def test_cross_product_within_window(self):
        events = EventQueue()
        join, sink = make_join(events)
        join.own_cell(0, 0)
        for i in range(3):
            join.on_tuple(LEFT, 0, tup("L", "k", 0.1 + i * 0.01))
        for i in range(2):
            join.on_tuple(RIGHT, 0, tup("R", "k", 0.2 + i * 0.01))
        events.run(until=1.0)
        assert sink.delivered == 6  # 3 x 2

    def test_unowned_partition_pairs_do_not_match(self):
        """Cells (0,0) and (1,1) owned: left partition 0 must not match
        right partition 1 — this is the duplicate-prevention invariant."""
        events = EventQueue()
        join, sink = make_join(events)
        join.own_cell(0, 0)
        join.own_cell(1, 1)
        join.on_tuple(LEFT, 0, tup("L", "k", 0.1))
        join.on_tuple(RIGHT, 1, tup("R", "k", 0.2))
        events.run(until=1.0)
        assert sink.delivered == 0
        join.on_tuple(RIGHT, 0, tup("R", "k", 0.3))
        events.run(until=2.0)
        assert sink.delivered == 1

    def test_duplicate_cell_rejected(self):
        events = EventQueue()
        join, _ = make_join(events)
        join.own_cell(0, 0)
        with pytest.raises(SimulationError):
            join.own_cell(0, 0)

    def test_handles(self):
        events = EventQueue()
        join, _ = make_join(events)
        join.own_cell(0, 1)
        assert join.handles(LEFT, 0)
        assert join.handles(RIGHT, 1)
        assert not join.handles(LEFT, 1)

    def test_late_tuples_dropped(self):
        events = EventQueue()
        join, sink = make_join(events, window_s=0.1, grace=1)
        join.own_cell(0, 0)
        # Tuple from window 0 arriving at t=5 (window 50): way past grace.
        events.schedule(5.0, lambda: join.on_tuple(LEFT, 0, tup("L", "k", 0.01)))
        events.run(until=6.0)
        assert join.tuples_dropped_late == 1
        assert sink.delivered == 0

    def test_results_emitted_counter(self):
        events = EventQueue()
        join, _ = make_join(events)
        join.own_cell(0, 0)
        join.on_tuple(LEFT, 0, tup("L", "k", 0.1))
        join.on_tuple(RIGHT, 0, tup("R", "k", 0.2))
        events.run(until=1.0)
        assert join.results_emitted == 1

    def test_invalid_window(self):
        events = EventQueue()
        network = Network(events, lambda u, v: 0.0)
        node = ProcessingNode("n", 1.0, events)
        with pytest.raises(SimulationError):
            RuntimeJoin("x", node, network, events, 0.0, "sink", lambda r: None)


class TestSink:
    def test_latency_recorded_from_created_at(self):
        events = EventQueue()
        node = ProcessingNode("sink", 1e6, events)
        sink = RuntimeSink("sink", node, events)
        left = tup("L", "k", 0.0)
        right = tup("R", "k", 0.5)
        result = JoinResult.of(left, right, window=0)
        assert result.created_at == 0.5
        events.schedule(1.0, lambda: sink.on_result(result))
        events.run(until=2.0)
        assert sink.latencies_ms == [pytest.approx(500.0)]


class TestPartitionRoute:
    def make_route(self, weights):
        events = EventQueue()
        join, _ = make_join(events)
        join.own_cell(0, 0)
        return PartitionRoute(
            side=LEFT,
            indices=list(range(len(weights))),
            weights=np.array(weights, dtype=float),
            targets=[[("host", join)] for _ in weights],
        )

    def test_weights_normalized(self):
        route = self.make_route([2.0, 2.0])
        assert route.weights.tolist() == [0.5, 0.5]

    def test_misaligned_rejected(self):
        events = EventQueue()
        join, _ = make_join(events)
        with pytest.raises(SimulationError):
            PartitionRoute(LEFT, [0], np.array([1.0, 1.0]), [[("h", join)]])

    def test_zero_weights_rejected(self):
        with pytest.raises(SimulationError):
            self.make_route([0.0, 0.0])
