"""Discrete-event core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.spe.events import EventQueue


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("late"))
        queue.schedule(1.0, lambda: order.append("early"))
        queue.run(until=10.0)
        assert order == ["early", "late"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append("first"))
        queue.schedule(1.0, lambda: order.append("second"))
        queue.run(until=10.0)
        assert order == ["first", "second"]

    def test_schedule_in(self):
        queue = EventQueue()
        seen = []
        queue.schedule_in(0.5, lambda: seen.append(queue.now))
        queue.run(until=1.0)
        assert seen == [0.5]

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run(until=6.0)
        with pytest.raises(SimulationError):
            queue.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1.0, lambda: None)


class TestRun:
    def test_stops_at_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(5.0, lambda: fired.append(5))
        executed = queue.run(until=2.0)
        assert executed == 1
        assert fired == [1]
        assert queue.now == 2.0
        assert len(queue) == 1

    def test_cascading_events(self):
        queue = EventQueue()
        counter = []

        def tick():
            counter.append(queue.now)
            if len(counter) < 5:
                queue.schedule_in(1.0, tick)

        queue.schedule(0.0, tick)
        queue.run(until=100.0)
        assert counter == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_event_budget(self):
        queue = EventQueue()

        def forever():
            queue.schedule_in(0.001, forever)

        queue.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            queue.run(until=10.0, max_events=100)

    def test_processed_events_counter(self):
        queue = EventQueue()
        for t in range(5):
            queue.schedule(float(t), lambda: None)
        queue.run(until=10.0)
        assert queue.processed_events == 5


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_property_execution_order_is_sorted(times):
    queue = EventQueue()
    seen = []
    for t in times:
        queue.schedule(t, lambda t=t: seen.append(t))
    queue.run(until=101.0)
    assert seen == sorted(seen)
    assert len(seen) == len(times)
