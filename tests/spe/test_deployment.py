"""Deployment of placements onto the simulator."""

import pytest

from repro.common.errors import SimulationError
from repro.baselines.sink_based import SinkBasedPlacement
from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.spe.deployment import Deployment, SimulationConfig, parse_partition_indices
from repro.workloads.debs import debs_workload


@pytest.fixture(scope="module")
def workload():
    return debs_workload(rate_hz=40.0, seed=2)


@pytest.fixture(scope="module")
def nova_placement(workload):
    session = Nova(NovaConfig(seed=2, sigma=1.0)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=workload.latency
    )
    return session.placement


class TestParsePartitionIndices:
    def test_roundtrip(self):
        assert parse_partition_indices("join[axb]/3x7") == (3, 7)

    def test_malformed(self):
        with pytest.raises(SimulationError):
            parse_partition_indices("garbage")
        with pytest.raises(SimulationError):
            parse_partition_indices("x/1-2")


class TestSimulationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_s": 0.0},
            {"duration_s": 0.0},
            {"allowed_lateness_s": -1.0},
            {"stress_factors": {"n": 0.0}},
            {"stress_factors": {"n": 1.5}},
            {"capacity_scale": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(SimulationError):
            SimulationConfig(**kwargs)


class TestDeploymentStructure:
    def test_merged_join_instances(self, workload, nova_placement):
        config = SimulationConfig(window_s=0.05, duration_s=1.0, seed=0)
        deployment = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        )
        # One merged RuntimeJoin per (replica, node).
        expected = {(s.replica_id, s.node_id) for s in nova_placement.sub_replicas}
        assert set(deployment.joins) == expected

    def test_sources_and_sinks_wired(self, workload, nova_placement):
        config = SimulationConfig(window_s=0.05, duration_s=1.0, seed=0)
        deployment = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        )
        assert len(deployment.sources) == len(workload.plan.sources())
        assert len(deployment.sinks) == 1
        for source in deployment.sources.values():
            assert source.routes  # every source feeds at least one replica

    def test_stress_reduces_capacity(self, workload, nova_placement):
        config = SimulationConfig(
            window_s=0.05, duration_s=1.0, seed=0,
            stress_factors={"source0": 0.5},
        )
        deployment = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        )
        nominal = workload.topology.node("source0").capacity
        assert deployment.nodes["source0"].capacity == pytest.approx(nominal * 0.5)

    def test_unknown_node_in_placement_rejected(self, workload):
        from repro.core.placement import Placement, SubReplicaPlacement

        placement = Placement()
        placement.extend(
            [
                SubReplicaPlacement(
                    sub_id="r/0x0", replica_id="r", join_id="climate_join",
                    node_id="ghost", left_source="pressure_region0",
                    right_source="humidity_region0", left_node="source0",
                    right_node="source1", sink_node="sink",
                    left_rate=1.0, right_rate=1.0,
                )
            ]
        )
        config = SimulationConfig(window_s=0.05, duration_s=1.0)
        with pytest.raises(SimulationError):
            Deployment(
                workload.topology, workload.plan, placement,
                workload.latency.latency, config,
            )


class TestRun:
    def test_report_fields(self, workload, nova_placement):
        config = SimulationConfig(window_s=0.05, duration_s=3.0, seed=1)
        report = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        ).run()
        assert report.results_delivered > 0
        assert report.tuples_emitted > 0
        assert report.network_transfers > 0
        assert report.latency.mean > 0
        assert report.throughput_per_s == pytest.approx(
            report.results_delivered / 3.0
        )
        assert set(report.node_processed) == set(workload.topology.node_ids)

    def test_latency_trend_and_cumulative(self, workload, nova_placement):
        config = SimulationConfig(window_s=0.05, duration_s=3.0, seed=1)
        report = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        ).run()
        trend = report.latency_trend(buckets=5)
        assert trend and all(lat > 0 for _, lat in trend)
        cumulative = report.cumulative_delivery(buckets=5)
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] == report.results_delivered

    def test_deterministic_given_seed(self, workload, nova_placement):
        config = SimulationConfig(window_s=0.05, duration_s=2.0, seed=7)
        first = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        ).run()
        second = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        ).run()
        assert first.results_delivered == second.results_delivered
        assert first.latency.mean == pytest.approx(second.latency.mean)

    def test_overloaded_sink_placement_underdelivers(self, workload, nova_placement):
        config = SimulationConfig(window_s=0.05, duration_s=3.0, seed=1)
        sink_placement = SinkBasedPlacement().place(
            workload.topology, workload.plan, workload.matrix
        )
        sink_report = Deployment(
            workload.topology, workload.plan, sink_placement,
            workload.latency.latency, config,
        ).run()
        nova_report = Deployment(
            workload.topology, workload.plan, nova_placement,
            workload.latency.latency, config,
        ).run()
        assert nova_report.results_delivered > sink_report.results_delivered


class TestFromArtifacts:
    def test_delta_stream_deploys_like_live_placement(self):
        """An archived base placement + PlanDelta stream wires the same
        runtime objects as deploying the live post-churn placement."""
        from repro.evaluation.latency import matrix_distance
        from repro.topology.dynamics import DataRateChangeEvent, RemoveNodeEvent
        from repro.topology.latency import DenseLatencyMatrix
        from repro.workloads.synthetic import synthetic_opp_workload

        workload2 = synthetic_opp_workload(80, seed=9)
        latency = DenseLatencyMatrix.from_topology(workload2.topology)
        session = Nova(NovaConfig(seed=9)).optimize(
            workload2.topology, workload2.plan, workload2.matrix, latency=latency
        )
        base = session.placement.copy()
        pinned = set(session.placement.pinned.values())
        host = next(
            sub.node_id
            for sub in session.placement.sub_replicas
            if sub.node_id not in pinned
        )
        source = session.plan.sources()[1].op_id
        deltas = [
            session.apply([RemoveNodeEvent(host)]),
            session.apply([DataRateChangeEvent(source, 120.0)]),
        ]

        config = SimulationConfig(duration_s=0.2, seed=9)
        distance = matrix_distance(latency)
        replayed = Deployment.from_artifacts(
            session.topology, session.plan, base, deltas, distance, config=config
        )
        live = Deployment(
            session.topology, session.plan, session.placement, distance,
            config=config,
        )
        assert set(replayed.joins) == set(live.joins)
        assert {
            (key, frozenset(join.cells)) for key, join in replayed.joins.items()
        } == {
            (key, frozenset(join.cells)) for key, join in live.joins.items()
        }
        # The base placement itself must be untouched by the fold.
        assert any(sub.node_id == host for sub in base.sub_replicas)
