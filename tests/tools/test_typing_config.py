"""Typing posture: py.typed marker, mypy config, and (when available)
an actual mypy pass over the strict-tier packages."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_py_typed_marker_ships_with_the_package():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()


def test_mypy_config_declares_the_strict_tier():
    text = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.mypy]" in text
    for module in ("repro.common", "repro.topology", "repro.serve"):
        assert module in text
    assert "disallow_untyped_defs = true" in text


def test_strict_tier_has_no_untyped_defs():
    """AST-level stand-in for mypy's disallow_untyped_defs, so the
    strict-tier bar holds even where mypy itself is not installed."""
    import ast

    offenders = []
    for pkg in ("common", "topology", "serve"):
        for path in sorted((REPO_ROOT / "src" / "repro" / pkg).rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                args = node.args
                params = args.posonlyargs + args.args + args.kwonlyargs
                missing = [
                    a.arg
                    for a in params
                    if a.annotation is None and a.arg not in ("self", "cls")
                ]
                if missing or node.returns is None:
                    offenders.append(f"{path}:{node.lineno} {node.name}")
    assert offenders == [], offenders


def test_mypy_passes_when_installed():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
