"""Golden-fixture suite: one violating/clean pair per novalint rule.

Each fixture directory mirrors the ``src/repro/...`` layout so the
rules' path scoping applies exactly as it does on the real tree; the
fixture root is passed as the lint root.
"""

from pathlib import Path

import pytest

from tools.novalint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(case: str):
    root = FIXTURES / case
    return lint_paths(["src"], root=root)


def findings_for(result, filename: str, rule: str):
    return [
        f
        for f in result.active
        if f.path.endswith(filename) and f.rule == rule
    ]


def assert_clean(result, filename: str) -> None:
    noise = [f for f in result.active if f.path.endswith(filename)]
    assert noise == [], [f.to_dict() for f in noise]


# -- journal-coverage ---------------------------------------------------
class TestJournalCoverage:
    def test_violating_shapes_all_caught(self):
        result = lint_fixture("journal")
        found = findings_for(result, "violating.py", "journal-coverage")
        assert {f.line for f in found} == {5, 9, 13, 17, 21, 25, 29, 34}
        assert all(f.severity == "error" for f in found)

    def test_clean_counterparts_pass(self):
        result = lint_fixture("journal")
        assert_clean(result, "clean.py")


# -- worker-purity ------------------------------------------------------
class TestWorkerPurity:
    def test_violating_shapes_all_caught(self):
        result = lint_fixture("worker")
        found = findings_for(result, "violating.py", "worker-purity")
        lines = {f.line for f in found}
        # lock ctor, global, mutable-global reads, open, NovaSession,
        # lambda entry, nested-function entry
        assert {9, 15, 17, 19, 21, 30, 37}.issubset(lines)

    def test_reachability_crosses_helper_calls(self):
        result = lint_fixture("worker")
        found = findings_for(result, "violating.py", "worker-purity")
        # threading.Lock() lives in _helper, one call away from the entry
        assert any("_helper" in f.message for f in found)

    def test_clean_entry_and_driver_side_pass(self):
        result = lint_fixture("worker")
        assert_clean(result, "clean.py")


# -- determinism --------------------------------------------------------
class TestDeterminism:
    def test_violating_shapes_all_caught(self):
        result = lint_fixture("determinism")
        found = findings_for(result, "violating.py", "determinism")
        assert {f.line for f in found} == {3, 9, 14, 20, 25, 29, 34, 42}

    def test_no_duplicate_findings(self):
        result = lint_fixture("determinism")
        found = findings_for(result, "violating.py", "determinism")
        keys = [(f.line, f.col) for f in found]
        assert len(keys) == len(set(keys))

    def test_sorted_counterparts_pass(self):
        result = lint_fixture("determinism")
        assert_clean(result, "clean.py")


# -- lock-discipline ----------------------------------------------------
class TestLockDiscipline:
    def test_violating_shapes_all_caught(self):
        result = lint_fixture("lockdisc")
        found = findings_for(result, "violating.py", "lock-discipline")
        assert {f.line for f in found} == {13, 16, 23}

    def test_init_locked_suffix_and_undeclared_pass(self):
        result = lint_fixture("lockdisc")
        assert_clean(result, "clean.py")


# -- no-bare-except-in-loop ---------------------------------------------
class TestBareExceptInLoop:
    def test_violating_shapes_all_caught(self):
        result = lint_fixture("bareexcept")
        found = findings_for(
            result, "violating.py", "no-bare-except-in-loop"
        )
        assert {f.line for f in found} == {8, 16, 24}

    def test_dead_letter_narrow_and_loopless_pass(self):
        result = lint_fixture("bareexcept")
        assert_clean(result, "clean.py")


# -- observed-list-contract ---------------------------------------------
class TestObservedListContract:
    def test_violating_shapes_all_caught(self):
        result = lint_fixture("observed")
        found = findings_for(
            result, "violating.py", "observed-list-contract"
        )
        assert {f.line for f in found} == {5, 9, 13, 17, 21}

    def test_growth_reads_and_reassignment_pass(self):
        result = lint_fixture("observed")
        assert_clean(result, "clean.py")

    def test_placement_store_is_exempt(self):
        result = lint_fixture("observed")
        assert_clean(result, "core/placement.py")


# -- cross-cutting ------------------------------------------------------
def test_every_rule_has_a_fixture_pair():
    from tools.novalint.registry import all_rules

    covered = {
        "journal-coverage": "journal",
        "worker-purity": "worker",
        "determinism": "determinism",
        "lock-discipline": "lockdisc",
        "no-bare-except-in-loop": "bareexcept",
        "observed-list-contract": "observed",
    }
    assert {rule.id for rule in all_rules()} == set(covered)
    for case in covered.values():
        assert (FIXTURES / case).is_dir()


@pytest.mark.parametrize(
    "case", ["journal", "worker", "determinism", "lockdisc", "bareexcept", "observed"]
)
def test_violating_fixture_fails_the_exit_code(case):
    result = lint_fixture(case)
    assert result.exit_code == 1
    assert result.errors
