"""Acceptance tripwire: the real tree lints clean.

Reintroducing a journal-coverage or determinism violation anywhere in
``src/`` fails this test *and* the CI lint job — the double fence the
static-analysis pass promises.
"""

from pathlib import Path

from tools.novalint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_has_no_unsuppressed_errors():
    result = lint_paths(["src"], root=REPO_ROOT)
    assert result.files_checked > 50  # sanity: the walk found the tree
    offenders = [f.to_dict() for f in result.errors]
    assert offenders == [], offenders
    assert result.exit_code == 0


def test_src_tree_has_no_warnings_either():
    # Unused suppressions rot: keep the tree free of them too.
    result = lint_paths(["src"], root=REPO_ROOT)
    warnings = [f.to_dict() for f in result.warnings]
    assert warnings == [], warnings


def test_tools_tree_itself_parses_clean():
    result = lint_paths(["tools"], root=REPO_ROOT)
    parse_errors = [f for f in result.findings if f.rule == "parse-error"]
    assert parse_errors == []
