"""Golden fixture: lock-disciplined counterparts."""

import threading
from collections import deque


class IngressQueue:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = deque()  # shared-under: _cond
        self._items.append(None)  # construction: not yet shared

    def put(self, event):
        with self._cond:
            self._items.append(event)
            self._cond.notify()

    def _compact_locked(self):
        # _locked suffix: the caller holds the lock by contract.
        self._items.clear()

    def drain(self):
        with self._cond:
            out = list(self._items)
            self._compact_locked()
        return out


class Undeclared:
    def __init__(self):
        self._items = deque()  # no declaration: rule stays silent

    def put(self, event):
        self._items.append(event)
