"""Golden fixture: shared-under attribute touched without its lock."""

import threading
from collections import deque


class IngressQueue:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = deque()  # shared-under: _cond

    def put(self, event):
        self._items.append(event)  # line 13: no lock held

    def size_unlocked(self):
        return len(self._items)  # line 16: read without the lock

    def drain(self):
        with self._cond:
            while self._items:
                first = self._items.popleft()
                del first
        return self._items  # line 23: access after the with block
