"""Golden fixture: positional surgery on the tombstone view."""


def index_write(replica, sub):
    replica.sub_replicas[0] = sub  # line 5: unstable index write


def index_delete(replica):
    del replica.sub_replicas[2]  # line 9: unstable index delete


def tombstone_internal(replica):
    replica.sub_replicas.mark_dead(1)  # line 13: bypasses _pin()


def positional_call(replica):
    replica.sub_replicas.sort()  # line 17: reorders observed positions


def replace_wholesale_contents(replica, subs):
    replica.sub_replicas.replace_contents(subs)  # line 21: internals
