"""Golden fixture: allowed interactions with sub_replicas."""


def growth_is_fine(replica, sub, more):
    replica.sub_replicas.append(sub)
    replica.sub_replicas.extend(more)


def reads_are_fine(replica):
    return [sub.node_id for sub in replica.sub_replicas]


def wholesale_reassignment_is_fine(replica, view):
    # Rebinding the attribute goes through the owning object's setattr
    # guards; only positional surgery on the live view is forbidden.
    replica.sub_replicas = view
