"""Golden fixture: the placement store itself is exempt by path."""


def compact(replica):
    replica.sub_replicas.mark_dead(0)
    replica.sub_replicas[0] = None
    replica.sub_replicas.sort()
