"""Golden fixture: the suppression comment grammar, good and bad."""


def inline_with_reason(placement):
    placement._by_node["n1"] = []  # novalint: allow[journal-coverage] fixture: rebuilt from journal pre-images below


def standalone_with_reason(placement):
    # novalint: allow[journal-coverage] fixture: covers the next code line
    del placement._by_node["n1"]


def reasonless_does_not_suppress(placement):
    placement._node_load = {}  # novalint: allow[journal-coverage]


def unknown_rule(placement):
    bucket = placement  # novalint: allow[no-such-rule] reason text here
    return bucket


def unused_allow(placement):
    bucket = placement  # novalint: allow[determinism] nothing here violates it
    return bucket
