"""Golden fixture: containment that dead-letters instead of swallowing."""


def pump(source, dead_letter):
    for raw in source:
        try:
            raw.decode()
        except Exception as error:
            dead_letter(raw, reason=str(error))  # handled, not silent


def narrow_is_fine(source):
    for raw in source:
        try:
            raw.decode()
        except UnicodeDecodeError:
            continue


def outside_a_loop_is_fine(payload):
    try:
        return payload.decode()
    except Exception:
        pass
    return None
