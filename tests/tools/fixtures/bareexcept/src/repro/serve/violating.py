"""Golden fixture: silent broad handlers inside serve loops."""


def pump(source):
    for raw in source:
        try:
            raw.decode()
        except Exception:  # line 8: swallowed in a for loop
            pass


def spin(queue):
    while True:
        try:
            queue.get()
        except:  # line 16: bare except, continue body  # noqa: E722
            continue


def tuple_broad(queue):
    while True:
        try:
            queue.get()
        except (ValueError, Exception):  # line 24: broad via tuple
            pass
