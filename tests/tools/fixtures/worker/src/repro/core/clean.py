"""Golden fixture: a pure worker entry in the style of packing.py."""

import threading

_FROZEN_TABLE = (1, 2, 3)  # immutable module constant: fine to read


class _Ring:
    """Worker-side helper class, methods reached via attribute calls."""

    def __init__(self, hosts):
        self.hosts = list(hosts)
        self.cursor = 0

    def next_host(self):
        host = self.hosts[self.cursor % len(self.hosts)]
        self.cursor += 1
        return host


def _pure_entry(unit):
    ring = _Ring(unit.hosts)
    total = sum(sorted(unit.weights))
    return ring.next_host(), total, _FROZEN_TABLE[0]


def launch(backend, units):
    backend.start(_pure_entry, units)


def driver_side_locks_are_fine():
    # Not reachable from any .start entry: the driver may lock freely.
    lock = threading.Lock()
    with lock:
        return open("/dev/null")


class Timer:
    def start(self):  # zero-arg .start is not the backend protocol
        return self
