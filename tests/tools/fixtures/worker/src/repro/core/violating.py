"""Golden fixture: impurity shapes crossing the backend boundary."""

import threading

_SHARED_CACHE = {}  # module-level mutable state


def _helper(unit):
    lock = threading.Lock()  # line 9: lock in worker path
    with lock:
        return unit


def _impure_entry(unit):
    global _COUNTER  # line 15: global statement
    _COUNTER = 1
    if unit.key in _SHARED_CACHE:  # line 17: mutable-global read
        return _SHARED_CACHE[unit.key]
    with open("/tmp/scratch") as fh:  # line 19: file handle
        fh.read()
    session = NovaSession  # line 21: session reference  # noqa: F821
    return _helper(unit), session


def launch(backend, units):
    backend.start(_impure_entry, units)


def launch_lambda(backend, units):
    backend.start(lambda u: u, units)  # line 30: closure across boundary


def launch_nested(backend, units):
    def _nested(unit):
        return unit

    backend.start(_nested, units)  # line 37: nested fn across boundary
