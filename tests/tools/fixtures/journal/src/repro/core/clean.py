"""Golden fixture: journal-respecting counterparts of every violation."""


class Placement:
    """Mutations inside the hook-surface classes are the implementation."""

    def __init__(self):
        self._by_node = {}
        self._node_load = {}

    def add(self, sub):
        self._by_node.setdefault(sub.node_id, []).append(sub)
        self._node_load[sub.node_id] = sub.charged_capacity


class AvailabilityLedger:
    def __init__(self):
        self._backing = {}

    def __setitem__(self, node_id, value):
        self._backing[node_id] = value


def through_the_api(placement, sub, ledger, node_id, value):
    # Outside the surface, mutate via the public API only.
    placement.add(sub)
    ledger[node_id] = value


def reads_are_fine(placement, node_id):
    bucket = placement._by_node.get(node_id, [])
    return len(bucket), placement.pinned
