"""Golden fixture: every journal-coverage violation shape."""


def direct_subscript_write(placement, sub):
    placement._by_node[sub.node_id] = [sub]  # line 5: subscript write


def direct_subscript_delete(placement, node_id):
    del placement._by_node[node_id]  # line 9: subscript delete


def ledger_backing_write(ledger, node_id, value):
    ledger._backing[node_id] = value  # line 13: ledger backing write


def bucket_rebinding(placement):
    placement._node_load = {}  # line 17: rebinding the store


def cow_wholesale(placement):
    placement.pinned = {}  # line 21: detaches the COW proxy


def mutating_call(placement, node_id):
    placement._join_hosts.pop(node_id, None)  # line 25: mutating call


def setattr_bypass(placement):
    object.__setattr__(placement, "_by_replica", {})  # line 29


class NotOnTheSurface:
    def sneaky(self, placement, key):
        placement._by_join[key] = []  # line 34: class is not allowed either
