"""Golden fixture: deterministic counterparts of every violation."""

import time


def sorted_loop(subs):
    ids = {s.replica_id for s in subs}
    for replica_id in sorted(ids):
        print(replica_id)


def dict_iteration_is_ordered(costs):
    # Plain dict iteration is insertion-ordered: allowed.
    for node in costs:
        print(node, costs[node])


def comp_over_sorted(subs):
    ids = set(s.node_id for s in subs)
    return [x for x in sorted(ids)]


def float_sum_sorted(loads):
    pending = {1.5, 2.5} | set(loads)
    return sum(sorted(pending))


def argmin_with_explicit_ties(candidates, cost):
    return min(sorted(set(candidates)), key=cost)


def list_rebinding_evicts(subs):
    ids = {s.replica_id for s in subs}
    ids = sorted(ids)  # rebound to a list: no longer set-typed
    for replica_id in ids:
        print(replica_id)


def timing_counters_are_fine():
    started = time.perf_counter()
    return time.perf_counter() - started
