"""Golden fixture: every determinism violation shape."""

import random  # line 3: entropy import
import time


def set_loop(subs):
    ids = {s.replica_id for s in subs}
    for replica_id in ids:  # line 9: loop over a set variable
        print(replica_id)


def inline_set_loop(a, b):
    for key in {a, b}:  # line 14: loop over a set display
        print(key)


def comp_over_set(subs):
    ids = set(s.node_id for s in subs)
    return [x for x in ids]  # line 20: list comprehension over a set


def float_sum(loads):
    pending = {1.5, 2.5} | set(loads)
    return sum(pending)  # line 25: unordered float accumulation


def argmin_over_set(candidates, cost):
    return min(set(candidates), key=cost)  # line 29: tie-break over a set


def keys_argmin(costs):
    best, best_cost = None, float("inf")
    for node in costs.keys():  # line 34: .keys() feeding a tie-break
        if costs[node] < best_cost:
            best = node
            best_cost = costs[node]
    return best


def wall_clock_decision():
    return time.time()  # line 42: wall clock in a deterministic path
