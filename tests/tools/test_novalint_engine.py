"""Engine behavior: suppressions, reporters, CLI contract, --changed."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.novalint import (
    LintResult,
    lint_paths,
    render_text,
    result_from_json,
    to_json_dict,
)
from tools.novalint.cli import main
from tools.novalint.reporters import render_json

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_fixture(case: str) -> LintResult:
    return lint_paths(["src"], root=FIXTURES / case)


# -- suppressions -------------------------------------------------------
class TestSuppressions:
    def test_inline_allow_with_reason_suppresses(self):
        result = lint_fixture("suppression")
        suppressed = [f for f in result.findings if f.suppressed]
        assert any(
            f.line == 5 and f.rule == "journal-coverage" for f in suppressed
        )
        reason = next(f for f in suppressed if f.line == 5).suppress_reason
        assert "journal pre-images" in reason

    def test_standalone_allow_covers_next_code_line(self):
        result = lint_fixture("suppression")
        suppressed = [f for f in result.findings if f.suppressed]
        assert any(
            f.line == 10 and f.rule == "journal-coverage" for f in suppressed
        )

    def test_reasonless_allow_is_an_error_and_does_not_suppress(self):
        result = lint_fixture("suppression")
        bad = [f for f in result.active if f.rule == "bad-suppression"]
        assert any("no reason" in f.message for f in bad)
        # the violation on the reasonless line stays active
        assert any(
            f.rule == "journal-coverage" and f.line == 14 and not f.suppressed
            for f in result.findings
        )

    def test_unknown_rule_allow_is_an_error(self):
        result = lint_fixture("suppression")
        bad = [f for f in result.active if f.rule == "bad-suppression"]
        assert any("no-such-rule" in f.message for f in bad)

    def test_unused_allow_is_a_warning(self):
        result = lint_fixture("suppression")
        unused = [f for f in result.active if f.rule == "unused-suppression"]
        assert len(unused) == 1
        assert unused[0].severity == "warning"
        assert unused[0].line == 23

    def test_suppressed_findings_do_not_drive_exit_code(self):
        result = lint_fixture("suppression")
        # bad-suppression errors keep this fixture red regardless
        assert result.exit_code == 1
        only_suppressed = [
            f for f in result.findings if f.suppressed
        ]
        assert only_suppressed  # sanity: some suppression happened


# -- reporters ----------------------------------------------------------
class TestReporters:
    def test_json_round_trip(self):
        result = lint_fixture("journal")
        payload = json.loads(
            json.dumps(to_json_dict(result))
        )
        restored = result_from_json(json.dumps(payload))
        assert restored.exit_code == result.exit_code
        assert restored.files_checked == result.files_checked
        assert [f.to_dict() for f in restored.findings] == [
            f.to_dict() for f in result.findings
        ]

    def test_json_counts_by_rule(self):
        result = lint_fixture("journal")
        payload = to_json_dict(result)
        assert payload["counts"]["journal-coverage"] == 8
        assert payload["errors"] == 8
        assert payload["exit_code"] == 1

    def test_text_report_format(self):
        result = lint_fixture("journal")
        stream = io.StringIO()
        render_text(result, stream)
        text = stream.getvalue()
        assert "src/repro/core/violating.py:5:" in text
        assert "error[journal-coverage]" in text
        assert "8 error(s)" in text

    def test_render_json_stream_round_trip(self):
        result = lint_fixture("determinism")
        stream = io.StringIO()
        render_json(result, stream)
        restored = result_from_json(stream.getvalue())
        assert restored.counts() == result.counts()


# -- CLI contract -------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        code = main(
            ["src/repro/serve", "--root", str(FIXTURES / "bareexcept"),
             "--select", "lock-discipline"]
        )
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_exit_one_on_violations(self, capsys):
        code = main(["src", "--root", str(FIXTURES / "journal")])
        capsys.readouterr()
        assert code == 1

    def test_exit_two_on_unknown_select(self, capsys):
        code = main(["src", "--select", "no-such-rule"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown rule" in captured.err

    def test_exit_two_on_missing_root(self):
        assert main(["src", "--root", "/nonexistent/nowhere"]) == 2

    def test_warn_downgrade_turns_exit_green(self, capsys):
        code = main(
            ["src", "--root", str(FIXTURES / "journal"),
             "--warn", "journal-coverage"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "warning[journal-coverage]" in captured.out

    def test_json_format_output(self, capsys):
        code = main(
            ["src", "--root", str(FIXTURES / "journal"), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == 1
        assert payload["counts"]["journal-coverage"] == 8

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "journal-coverage",
            "worker-purity",
            "determinism",
            "lock-discipline",
            "no-bare-except-in-loop",
            "observed-list-contract",
            "bad-suppression",
        ):
            assert rule_id in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.novalint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "novalint rule catalogue" in proc.stdout


# -- --changed mode -----------------------------------------------------
class TestChangedMode:
    def _git(self, cwd, *args):
        return subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True
        )

    @pytest.fixture()
    def git_repo(self, tmp_path):
        if self._git(tmp_path, "--version").returncode != 0:
            pytest.skip("git unavailable")
        repo = tmp_path / "repo"
        core = repo / "src" / "repro" / "core"
        core.mkdir(parents=True)
        self._git(repo, "init", "-b", "main")
        self._git(repo, "config", "user.email", "t@example.com")
        self._git(repo, "config", "user.name", "t")
        (core / "stable.py").write_text(
            "def untouched(subs):\n"
            "    ids = {s.id for s in subs}\n"
            "    for x in ids:\n"
            "        print(x)\n"
        )
        self._git(repo, "add", "-A")
        self._git(repo, "commit", "-m", "seed")
        return repo

    def test_changed_lints_only_touched_files(self, git_repo):
        from tools.novalint.changed import changed_files

        core = git_repo / "src" / "repro" / "core"
        (core / "touched.py").write_text(
            "import random\n"
        )
        only = changed_files(git_repo, "main")
        assert only == {"src/repro/core/touched.py"}
        result = lint_paths(["src"], root=git_repo, only_files=only)
        assert result.files_checked == 1
        assert [f.rule for f in result.active] == ["determinism"]
        # the stable file's violation is out of scope for --changed
        assert all("stable.py" not in f.path for f in result.findings)

    def test_changed_falls_back_to_full_lint_outside_git(self, tmp_path):
        from tools.novalint.changed import changed_files

        assert changed_files(tmp_path, None) is None
