"""Theoretical latency evaluation."""

import numpy as np
import pytest

from repro.core.placement import Placement, SubReplicaPlacement
from repro.evaluation.latency import (
    LatencyStats,
    direct_transmission_latencies,
    latency_stats,
    matrix_distance,
    p90_delta_vs_direct,
    placement_latencies,
    sub_replica_latency,
    tree_route_distance,
)
from repro.baselines.tree import mst_parent_map
from repro.topology.latency import DenseLatencyMatrix


def line_matrix():
    """a -- 10 -- b -- 10 -- c -- 10 -- d on a line (Euclidean)."""
    coords = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0], [30.0, 0.0]])
    return DenseLatencyMatrix.from_coordinates(["a", "b", "c", "d"], coords)


def sub(node, left_node="a", right_node="c", sink="d"):
    return SubReplicaPlacement(
        sub_id=f"r/{node}",
        replica_id="r",
        join_id="j",
        node_id=node,
        left_source="ls",
        right_source="rs",
        left_node=left_node,
        right_node=right_node,
        sink_node=sink,
        left_rate=1.0,
        right_rate=1.0,
    )


class TestSubReplicaLatency:
    def test_max_inbound_plus_outbound(self):
        distance = matrix_distance(line_matrix())
        # host b: inbound max(d(a,b)=10, d(c,b)=10) = 10; outbound d(b,d)=20.
        assert sub_replica_latency(sub("b"), distance) == pytest.approx(30.0)

    def test_host_at_sink_is_direct_transmission(self):
        distance = matrix_distance(line_matrix())
        assert sub_replica_latency(sub("d"), distance) == pytest.approx(30.0)


class TestPlacementLatencies:
    def test_vector_and_stats(self):
        placement = Placement()
        placement.extend([sub("b"), sub("c")])
        distance = matrix_distance(line_matrix())
        values = placement_latencies(placement, distance)
        assert values.shape == (2,)
        stats = latency_stats(placement, distance)
        assert stats.mean == pytest.approx(values.mean())
        assert stats.maximum == pytest.approx(values.max())

    def test_direct_transmission_bound(self):
        placement = Placement()
        placement.extend([sub("b")])
        distance = matrix_distance(line_matrix())
        bound = direct_transmission_latencies(placement, distance)
        assert bound[0] == pytest.approx(30.0)  # max(d(a,d)=30, d(c,d)=10)

    def test_p90_delta_zero_when_host_is_sink(self):
        placement = Placement()
        placement.extend([sub("d")])
        assert p90_delta_vs_direct(placement, matrix_distance(line_matrix())) == pytest.approx(0.0)

    def test_p90_delta_positive_for_detour(self):
        placement = Placement()
        placement.extend([sub("a")])  # join at left source: long return path
        assert p90_delta_vs_direct(placement, matrix_distance(line_matrix())) > 0.0


class TestLatencyStats:
    def test_empty_sample(self):
        stats = LatencyStats.from_values([])
        assert stats.mean == 0.0 and stats.p9999 == 0.0

    def test_percentile_ordering(self):
        stats = LatencyStats.from_values(np.arange(1000.0))
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.p9999 <= stats.maximum


class TestTreeRouteDistance:
    def test_multi_hop_longer_than_straight_line(self):
        """Tree routing can only be as good as direct latency; with a
        detour it is strictly worse — the Section 4.4 underestimation."""
        matrix = line_matrix()
        parents = mst_parent_map(matrix, root="d")
        route = tree_route_distance({"d": parents}, matrix, root_of=lambda _: "d")
        assert route("a", "d") >= matrix.latency("a", "d") - 1e-9

    def test_same_node_zero(self):
        matrix = line_matrix()
        parents = mst_parent_map(matrix, root="d")
        route = tree_route_distance({"d": parents}, matrix, root_of=lambda _: "d")
        assert route("b", "b") == 0.0

    def test_missing_tree_falls_back_to_direct(self):
        matrix = line_matrix()
        route = tree_route_distance({}, matrix, root_of=lambda _: "nope")
        assert route("a", "d") == matrix.latency("a", "d")
