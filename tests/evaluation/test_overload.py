"""Overload metrics."""

import pytest

from repro.core.placement import Placement, SubReplicaPlacement
from repro.evaluation.overload import (
    max_utilization,
    node_utilizations,
    overload_percentage,
    overloaded_nodes,
)
from repro.topology.model import Node, Topology


def topology_with(capacities):
    topology = Topology()
    for name, capacity in capacities.items():
        topology.add_node(Node(name, capacity))
    return topology


def sub_on(node, demand, sub_id=None):
    return SubReplicaPlacement(
        sub_id=sub_id or f"r/{node}/0x0",
        replica_id="r",
        join_id="j",
        node_id=node,
        left_source="l",
        right_source="rr",
        left_node="nl",
        right_node="nr",
        sink_node="nk",
        left_rate=demand / 2.0,
        right_rate=demand / 2.0,
    )


class TestUtilizations:
    def test_only_hosting_nodes_counted(self):
        topology = topology_with({"a": 10.0, "idle": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 5.0)])
        utilizations = node_utilizations(placement, topology)
        assert [u.node_id for u in utilizations] == ["a"]
        assert utilizations[0].utilization == 0.5

    def test_overload_flag(self):
        topology = topology_with({"a": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 11.0)])
        assert overloaded_nodes(placement, topology)[0].node_id == "a"

    def test_zero_capacity_node(self):
        topology = topology_with({"z": 0.0})
        placement = Placement()
        placement.extend([sub_on("z", 1.0)])
        utilization = node_utilizations(placement, topology)[0]
        assert utilization.utilization == float("inf")
        assert utilization.overloaded


class TestOverloadPercentage:
    def test_sink_style_hundred_percent(self):
        """One hosting node, overloaded -> 100% (the sink-based case)."""
        topology = topology_with({"sink": 10.0, "w1": 100.0, "w2": 100.0})
        placement = Placement()
        placement.extend([sub_on("sink", 50.0)])
        assert overload_percentage(placement, topology) == 100.0

    def test_half(self):
        topology = topology_with({"a": 10.0, "b": 100.0})
        placement = Placement()
        placement.extend([sub_on("a", 50.0), sub_on("b", 50.0, sub_id="x")])
        assert overload_percentage(placement, topology) == 50.0

    def test_empty_placement(self):
        assert overload_percentage(Placement(), topology_with({"a": 1.0})) == 0.0

    def test_exact_capacity_not_overloaded(self):
        topology = topology_with({"a": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 10.0)])
        assert overload_percentage(placement, topology) == 0.0


class TestMaxUtilization:
    def test_value(self):
        topology = topology_with({"a": 10.0, "b": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 5.0), sub_on("b", 20.0, sub_id="y")])
        assert max_utilization(placement, topology) == 2.0

    def test_empty(self):
        assert max_utilization(Placement(), topology_with({"a": 1.0})) == 0.0
