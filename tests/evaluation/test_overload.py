"""Overload metrics."""

import pytest

from repro.core.placement import Placement, SubReplicaPlacement
from repro.evaluation.overload import (
    max_utilization,
    node_utilizations,
    overload_percentage,
    overloaded_nodes,
)
from repro.topology.model import Node, Topology


def topology_with(capacities):
    topology = Topology()
    for name, capacity in capacities.items():
        topology.add_node(Node(name, capacity))
    return topology


def sub_on(node, demand, sub_id=None):
    return SubReplicaPlacement(
        sub_id=sub_id or f"r/{node}/0x0",
        replica_id="r",
        join_id="j",
        node_id=node,
        left_source="l",
        right_source="rr",
        left_node="nl",
        right_node="nr",
        sink_node="nk",
        left_rate=demand / 2.0,
        right_rate=demand / 2.0,
    )


class TestUtilizations:
    def test_only_hosting_nodes_counted(self):
        topology = topology_with({"a": 10.0, "idle": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 5.0)])
        utilizations = node_utilizations(placement, topology)
        assert [u.node_id for u in utilizations] == ["a"]
        assert utilizations[0].utilization == 0.5

    def test_overload_flag(self):
        topology = topology_with({"a": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 11.0)])
        assert overloaded_nodes(placement, topology)[0].node_id == "a"

    def test_zero_capacity_node(self):
        topology = topology_with({"z": 0.0})
        placement = Placement()
        placement.extend([sub_on("z", 1.0)])
        utilization = node_utilizations(placement, topology)[0]
        assert utilization.utilization == float("inf")
        assert utilization.overloaded


class TestOverloadPercentage:
    def test_sink_style_hundred_percent(self):
        """One hosting node, overloaded -> 100% (the sink-based case)."""
        topology = topology_with({"sink": 10.0, "w1": 100.0, "w2": 100.0})
        placement = Placement()
        placement.extend([sub_on("sink", 50.0)])
        assert overload_percentage(placement, topology) == 100.0

    def test_half(self):
        topology = topology_with({"a": 10.0, "b": 100.0})
        placement = Placement()
        placement.extend([sub_on("a", 50.0), sub_on("b", 50.0, sub_id="x")])
        assert overload_percentage(placement, topology) == 50.0

    def test_empty_placement(self):
        assert overload_percentage(Placement(), topology_with({"a": 1.0})) == 0.0

    def test_exact_capacity_not_overloaded(self):
        topology = topology_with({"a": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 10.0)])
        assert overload_percentage(placement, topology) == 0.0


class TestMaxUtilization:
    def test_value(self):
        topology = topology_with({"a": 10.0, "b": 10.0})
        placement = Placement()
        placement.extend([sub_on("a", 5.0), sub_on("b", 20.0, sub_id="y")])
        assert max_utilization(placement, topology) == 2.0

    def test_empty(self):
        assert max_utilization(Placement(), topology_with({"a": 1.0})) == 0.0


class TestOverloadMonitor:
    def make(self, capacities):
        from repro.evaluation.overload import OverloadMonitor

        topology = topology_with(capacities)
        placement = Placement()
        return placement, topology, OverloadMonitor(placement, topology)

    def test_tracks_additions_incrementally(self):
        placement, topology, monitor = self.make({"a": 10.0, "b": 10.0})
        placement.extend([sub_on("a", 5.0)])
        assert monitor.hosting_count == 1
        assert monitor.overloaded_count == 0
        placement.extend([sub_on("b", 11.0, sub_id="r/b/0x1")])
        assert monitor.overloaded_count == 1
        assert monitor.overloaded_node_ids == ["b"]
        assert monitor.percentage == pytest.approx(50.0)

    def test_tracks_removals(self):
        placement, topology, monitor = self.make({"a": 10.0})
        placement.extend([sub_on("a", 6.0, sub_id="r/a/0x0"),
                          sub_on("a", 6.0, sub_id="r/a/0x1")])
        assert monitor.overloaded_count == 1
        placement.remove_replica("r")
        assert monitor.hosting_count == 0
        assert monitor.overloaded_count == 0
        assert monitor.percentage == 0.0

    def test_matches_scan_functions_through_churn(self):
        import numpy as np

        rng = np.random.default_rng(0)
        capacities = {f"n{i}": float(rng.uniform(5, 15)) for i in range(8)}
        placement, topology, monitor = self.make(capacities)
        for step in range(30):
            node = f"n{rng.integers(0, 8)}"
            if rng.random() < 0.6:
                placement.extend(
                    [sub_on(node, float(rng.uniform(1, 8)),
                            sub_id=f"r{step}/{node}/0x0")]
                )
            else:
                for sub in list(placement.sub_replicas):
                    if sub.node_id == node:
                        placement.remove_replica(sub.replica_id)
                        break
            assert monitor.percentage == pytest.approx(
                overload_percentage(placement, topology)
            )
            assert monitor.max_utilization == pytest.approx(
                max_utilization(placement, topology)
            )

    def test_refresh_node_after_capacity_only_change(self):
        placement, topology, monitor = self.make({"a": 10.0})
        placement.extend([sub_on("a", 8.0)])
        assert monitor.overloaded_count == 0
        topology.node("a").capacity = 4.0  # no load change: monitor is stale
        monitor.refresh_node("a")
        assert monitor.overloaded_count == 1
        assert monitor.percentage == pytest.approx(
            overload_percentage(placement, topology)
        )

    def test_close_detaches_observer(self):
        placement, topology, monitor = self.make({"a": 10.0})
        monitor.close()
        placement.extend([sub_on("a", 20.0)])
        assert monitor.hosting_count == 0  # no longer notified

    def test_wholesale_list_reassignment_resyncs(self):
        placement, topology, monitor = self.make({"a": 10.0, "b": 10.0})
        placement.extend([sub_on("a", 20.0)])
        assert monitor.overloaded_node_ids == ["a"]
        placement.sub_replicas = [sub_on("b", 3.0)]
        monitor.resync()
        assert monitor.overloaded_count == 0
        assert monitor.hosting_count == 1

    def test_session_apply_keeps_monitor_current(self):
        from repro.core.config import NovaConfig
        from repro.core.optimizer import Nova
        from repro.evaluation.overload import OverloadMonitor
        from repro.topology.dynamics import DataRateChangeEvent, RemoveNodeEvent
        from repro.topology.latency import DenseLatencyMatrix
        from repro.workloads.synthetic import synthetic_opp_workload

        workload = synthetic_opp_workload(100, seed=1)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=1)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        monitor = OverloadMonitor(session.placement, session.topology)
        host = session.placement.sub_replicas[0].node_id
        source = session.plan.sources()[1].op_id
        session.apply([RemoveNodeEvent(host), DataRateChangeEvent(source, 180.0)])
        assert monitor.percentage == pytest.approx(
            overload_percentage(session.placement, session.topology)
        )
        assert monitor.hosting_count == len(
            node_utilizations(session.placement, session.topology)
        )

    def test_observer_notified_when_rebuild_drops_nodes(self):
        """Wholesale list reassignment (the rollback path) must zero out
        nodes that stopped hosting, not leave phantom monitor entries."""
        placement, topology, monitor = self.make({"a": 10.0, "b": 10.0})
        placement.extend([sub_on("a", 20.0), sub_on("b", 3.0, sub_id="r/b/0x0")])
        assert monitor.overloaded_node_ids == ["a"]
        placement.sub_replicas = [sub_on("b", 3.0)]  # "a" vanishes
        assert monitor.hosting_count == 1
        assert monitor.overloaded_count == 0
        assert monitor.percentage == pytest.approx(
            overload_percentage(placement, topology)
        )

    def test_apply_delta_covers_capacity_fast_path(self):
        from repro.core.config import NovaConfig
        from repro.core.optimizer import Nova
        from repro.evaluation.overload import OverloadMonitor
        from repro.topology.dynamics import CapacityChangeEvent
        from repro.topology.latency import DenseLatencyMatrix
        from repro.workloads.synthetic import synthetic_opp_workload

        workload = synthetic_opp_workload(100, seed=1)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=1)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        monitor = OverloadMonitor(session.placement, session.topology)
        host = session.placement.sub_replicas[0].node_id
        delta = session.apply(
            [CapacityChangeEvent(host, session.topology.node(host).capacity * 3)]
        )
        assert not delta.subs_added  # fast path: nothing moved
        monitor.apply_delta(delta)
        assert monitor.percentage == pytest.approx(
            overload_percentage(session.placement, session.topology)
        )
