"""Comparison reports."""

from repro.baselines.sink_based import SinkBasedPlacement
from repro.core.config import NovaConfig
from repro.core.planner import plan
from repro.evaluation.latency import matrix_distance
from repro.evaluation.overload import overload_percentage
from repro.evaluation.report import (
    comparison_table,
    evaluate_approach,
    evaluate_result,
)
from repro.topology.dynamics import DataRateChangeEvent
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.running_example import build_running_example
from repro.workloads.synthetic import synthetic_opp_workload


class TestEvaluateApproach:
    def test_fields_populated(self):
        example = build_running_example()
        placement = SinkBasedPlacement().place(example.topology, example.plan, example.matrix)
        result = evaluate_approach(
            "sink-based", placement, example.topology,
            matrix_distance(example.latency), runtime_s=0.5,
        )
        assert result.name == "sink-based"
        assert result.overload_pct == 100.0
        assert result.stats.mean > 0
        assert result.runtime_s == 0.5


class TestMonitorRouting:
    """Live sessions route overload through OverloadMonitor; the figure
    must match the stateless scan path exactly."""

    def build(self):
        workload = synthetic_opp_workload(100, seed=6)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        result = plan(workload, "nova", config=NovaConfig(seed=6), latency=latency)
        return workload, latency, result

    def test_session_path_matches_scan_path(self):
        workload, latency, result = self.build()
        distance = matrix_distance(latency)
        session = result.session
        via_monitor = evaluate_approach(
            "nova", result.placement, workload.topology, distance, session=session
        )
        via_scan = evaluate_approach(
            "nova", result.placement, workload.topology, distance
        )
        assert via_monitor.overload_pct == via_scan.overload_pct
        assert via_monitor.overload_pct == overload_percentage(
            result.placement, workload.topology
        )

    def test_parity_survives_churn(self):
        workload, latency, result = self.build()
        distance = matrix_distance(latency)
        source = workload.plan.sources()[0].op_id
        # Instantiate the monitor before churn so it must track the
        # changes incrementally rather than resyncing at creation.
        monitor = result.session.overload_monitor
        result.apply([DataRateChangeEvent(source, 180.0)])
        via_monitor = evaluate_approach(
            "nova",
            result.placement,
            workload.topology,
            distance,
            session=result.session,
        )
        assert via_monitor.overload_pct == overload_percentage(
            result.placement, workload.topology
        )
        assert monitor is result.session.overload_monitor  # one monitor, reused

    def test_foreign_placement_falls_back_to_scan(self):
        workload, latency, result = self.build()
        other = plan(workload, "sink-based", latency=latency)
        evaluated = evaluate_approach(
            "sink-based",
            other.placement,
            workload.topology,
            matrix_distance(latency),
            session=result.session,  # session does not own this placement
        )
        assert evaluated.overload_pct == overload_percentage(
            other.placement, workload.topology
        )

    def test_evaluate_result_uniform_over_strategies(self):
        example = build_running_example()
        for name in ("nova", "sink-based", "tree"):
            result = plan(example, name, config=NovaConfig(seed=7))
            evaluated = evaluate_result(result)
            assert evaluated.name == name
            assert evaluated.overload_pct == overload_percentage(
                result.placement, example.topology
            )
            assert evaluated.stats.mean >= 0.0


class TestComparisonTable:
    def test_renders_all_rows(self):
        example = build_running_example()
        placement = SinkBasedPlacement().place(example.topology, example.plan, example.matrix)
        result = evaluate_approach(
            "sink-based", placement, example.topology, matrix_distance(example.latency)
        )
        text = comparison_table([result, result], title="Fig 7")
        assert text.splitlines()[0] == "Fig 7"
        assert text.count("sink-based") == 2
        assert "overload %" in text
