"""Comparison reports."""

from repro.baselines.sink_based import SinkBasedPlacement
from repro.evaluation.latency import matrix_distance
from repro.evaluation.report import comparison_table, evaluate_approach
from repro.workloads.running_example import build_running_example


class TestEvaluateApproach:
    def test_fields_populated(self):
        example = build_running_example()
        placement = SinkBasedPlacement().place(example.topology, example.plan, example.matrix)
        result = evaluate_approach(
            "sink-based", placement, example.topology,
            matrix_distance(example.latency), runtime_s=0.5,
        )
        assert result.name == "sink-based"
        assert result.overload_pct == 100.0
        assert result.stats.mean > 0
        assert result.runtime_s == 0.5


class TestComparisonTable:
    def test_renders_all_rows(self):
        example = build_running_example()
        placement = SinkBasedPlacement().place(example.topology, example.plan, example.matrix)
        result = evaluate_approach(
            "sink-based", placement, example.topology, matrix_distance(example.latency)
        )
        text = comparison_table([result, result], title="Fig 7")
        assert text.splitlines()[0] == "Fig 7"
        assert text.count("sink-based") == 2
        assert "overload %" in text
