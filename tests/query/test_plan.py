"""Logical plans."""

import pytest

from repro.common.errors import PlanError, UnknownOperatorError
from repro.query.plan import LogicalPlan


def two_region_plan():
    plan = LogicalPlan()
    plan.add_source("t1", node="nt1", rate=25.0, logical_stream="T")
    plan.add_source("t2", node="nt2", rate=25.0, logical_stream="T")
    plan.add_source("w1", node="nw1", rate=25.0, logical_stream="W")
    plan.add_join("join", left="T", right="W")
    plan.add_sink("sink", node="nsink", inputs=["join.out"])
    return plan


class TestConstruction:
    def test_duplicate_operator_rejected(self):
        plan = two_region_plan()
        with pytest.raises(PlanError, match="duplicate"):
            plan.add_source("t1", node="x", rate=1.0, logical_stream="T")

    def test_duplicate_stream_producer_rejected(self):
        plan = LogicalPlan()
        plan.add_source("a", node="n", rate=1.0, logical_stream="T", output="shared")
        with pytest.raises(PlanError, match="already produced"):
            plan.add_source("b", node="n", rate=1.0, logical_stream="T", output="shared")

    def test_join_same_stream_rejected(self):
        plan = LogicalPlan()
        with pytest.raises(PlanError):
            plan.add_join("j", left="T", right="T")

    def test_default_output_stream_name(self):
        plan = LogicalPlan()
        source = plan.add_source("s", node="n", rate=1.0, logical_stream="T")
        assert source.outputs == ["s.out"]


class TestAccess:
    def test_operator_lookup(self):
        plan = two_region_plan()
        assert plan.operator("join").is_join
        with pytest.raises(UnknownOperatorError):
            plan.operator("nope")

    def test_len_contains(self):
        plan = two_region_plan()
        assert len(plan) == 5
        assert "sink" in plan

    def test_sources_of_stream(self):
        plan = two_region_plan()
        assert {op.op_id for op in plan.sources_of_stream("T")} == {"t1", "t2"}
        assert {op.op_id for op in plan.sources_of_stream("W")} == {"w1"}

    def test_logical_streams(self):
        assert two_region_plan().logical_streams() == ["T", "W"]

    def test_producer_and_consumers(self):
        plan = two_region_plan()
        assert plan.producer_of("join.out").op_id == "join"
        assert [op.op_id for op in plan.consumers_of("join.out")] == ["sink"]

    def test_sink_of_join(self):
        plan = two_region_plan()
        assert plan.sink_of_join("join").op_id == "sink"

    def test_sink_of_join_without_sink_raises(self):
        plan = LogicalPlan()
        plan.add_source("s", node="n", rate=1.0, logical_stream="T")
        plan.add_source("u", node="n2", rate=1.0, logical_stream="U")
        plan.add_join("j", left="T", right="U")
        with pytest.raises(PlanError):
            plan.sink_of_join("j")


class TestConnectedPairs:
    def test_logical_stream_connections_expand_to_sources(self):
        plan = two_region_plan()
        pairs = set(plan.connected_pairs())
        assert ("t1", "join") in pairs
        assert ("t2", "join") in pairs
        assert ("w1", "join") in pairs
        assert ("join", "sink") in pairs


class TestValidate:
    def test_valid_plan_passes(self):
        two_region_plan().validate()

    def test_no_sink_rejected(self):
        plan = LogicalPlan()
        plan.add_source("s", node="n", rate=1.0, logical_stream="T")
        with pytest.raises(PlanError, match="no sink"):
            plan.validate()

    def test_no_sources_rejected(self):
        plan = LogicalPlan()
        plan.add_operator(
            __import__("repro.query.operators", fromlist=["Operator"]).Operator(
                "k", "sink", inputs=["ghost"], pinned_node="n"
            )
        )
        with pytest.raises(PlanError, match="no sources"):
            plan.validate()

    def test_join_with_unproduced_stream_rejected(self):
        plan = LogicalPlan()
        plan.add_source("s", node="n", rate=1.0, logical_stream="T")
        plan.add_join("j", left="T", right="GHOST")
        plan.add_sink("sink", node="n2", inputs=["j.out"])
        with pytest.raises(PlanError, match="no producer"):
            plan.validate()


class TestRemoval:
    def test_remove_operator_frees_stream(self):
        plan = two_region_plan()
        plan.remove_operator("t1")
        assert "t1" not in plan
        # The stream name can be reused now.
        plan.add_source("t1b", node="x", rate=1.0, logical_stream="T", output="t1.out")
