"""The join matrix M."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import JoinMatrixError
from repro.query.join_matrix import JoinMatrix


class TestConstruction:
    def test_dense(self):
        matrix = JoinMatrix.dense(["a", "b"], ["x", "y", "z"])
        assert matrix.num_pairs() == 6
        assert matrix.density() == 1.0

    def test_from_regions(self):
        matrix = JoinMatrix.from_regions(
            {"t1": "r1", "t2": "r1", "t3": "r2"},
            {"w1": "r1", "w2": "r2"},
        )
        assert matrix.joinable("t1", "w1")
        assert matrix.joinable("t3", "w2")
        assert not matrix.joinable("t1", "w2")
        assert matrix.num_pairs() == 3

    def test_duplicate_left_rejected(self):
        matrix = JoinMatrix(["a"], [])
        with pytest.raises(JoinMatrixError):
            matrix.add_left("a")

    def test_side_crossover_rejected(self):
        matrix = JoinMatrix(["a"], ["x"])
        with pytest.raises(JoinMatrixError):
            matrix.add_right("a")
        with pytest.raises(JoinMatrixError):
            matrix.add_left("x")


class TestMutation:
    def test_allow_unknown_rejected(self):
        matrix = JoinMatrix(["a"], ["x"])
        with pytest.raises(JoinMatrixError):
            matrix.allow("ghost", "x")
        with pytest.raises(JoinMatrixError):
            matrix.allow("a", "ghost")

    def test_forbid(self):
        matrix = JoinMatrix.dense(["a"], ["x", "y"])
        matrix.forbid("a", "x")
        assert not matrix.joinable("a", "x")
        assert matrix.num_pairs() == 1

    def test_remove_source_returns_lost_pairs(self):
        matrix = JoinMatrix.dense(["a", "b"], ["x", "y"])
        removed = matrix.remove_source("a")
        assert set(removed) == {("a", "x"), ("a", "y")}
        assert matrix.left_ids == ["b"]
        assert matrix.num_pairs() == 2

    def test_remove_right_source(self):
        matrix = JoinMatrix.dense(["a"], ["x", "y"])
        matrix.remove_source("y")
        assert matrix.right_ids == ["x"]

    def test_remove_unknown_raises(self):
        with pytest.raises(JoinMatrixError):
            JoinMatrix().remove_source("ghost")


class TestQueries:
    def test_pairs_deterministic_row_major(self):
        matrix = JoinMatrix.dense(["b", "a"], ["y", "x"])
        assert list(matrix.pairs()) == [("b", "y"), ("b", "x"), ("a", "y"), ("a", "x")]

    def test_pairs_of(self):
        matrix = JoinMatrix.dense(["a", "b"], ["x"])
        assert matrix.pairs_of("a") == [("a", "x")]
        assert matrix.pairs_of("x") == [("a", "x"), ("b", "x")]

    def test_contains_and_len(self):
        matrix = JoinMatrix.dense(["a"], ["x"])
        assert ("a", "x") in matrix
        assert len(matrix) == 1

    def test_empty_density(self):
        assert JoinMatrix().density() == 0.0


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_property_remove_source_conserves_pairs(n_left, n_right, seed):
    """Removing every left source one by one drains exactly all pairs."""
    import numpy as np

    rng = np.random.default_rng(seed)
    lefts = [f"l{i}" for i in range(n_left)]
    rights = [f"r{i}" for i in range(n_right)]
    matrix = JoinMatrix(lefts, rights)
    expected = 0
    for left in lefts:
        for right in rights:
            if rng.random() < 0.5:
                matrix.allow(left, right)
                expected += 1
    drained = 0
    for left in list(lefts):
        drained += len(matrix.remove_source(left))
    assert drained == expected
    assert matrix.num_pairs() == 0
