"""Source expansion and pair-wise join replication."""

import pytest

from repro.common.errors import JoinMatrixError, PlanError
from repro.query.expansion import replica_id_for, resolve_operators
from repro.query.join_matrix import JoinMatrix
from repro.query.plan import LogicalPlan


def build_plan():
    plan = LogicalPlan()
    plan.add_source("t1", node="nt1", rate=25.0, logical_stream="T")
    plan.add_source("t2", node="nt2", rate=30.0, logical_stream="T")
    plan.add_source("w1", node="nw1", rate=10.0, logical_stream="W")
    plan.add_join("join", left="T", right="W")
    plan.add_sink("sink", node="nsink", inputs=["join.out"])
    return plan


class TestResolve:
    def test_one_replica_per_pair(self):
        plan = build_plan()
        matrix = JoinMatrix.dense(["t1", "t2"], ["w1"])
        resolved = resolve_operators(plan, matrix)
        assert len(resolved.replicas) == 2
        ids = {r.replica_id for r in resolved.replicas}
        assert replica_id_for("join", "t1", "w1") in ids
        assert replica_id_for("join", "t2", "w1") in ids

    def test_replica_carries_rates_and_nodes(self):
        plan = build_plan()
        matrix = JoinMatrix.dense(["t2"], ["w1"])
        replica = resolve_operators(plan, matrix).replicas[0]
        assert replica.left_rate == 30.0
        assert replica.right_rate == 10.0
        assert replica.required_capacity == 40.0
        assert replica.pinned_nodes == ("nt2", "nw1", "nsink")
        assert replica.sink_id == "sink"

    def test_sparse_matrix_restricts_pairs(self):
        plan = build_plan()
        matrix = JoinMatrix(["t1", "t2"], ["w1"])
        matrix.allow("t1", "w1")
        resolved = resolve_operators(plan, matrix)
        assert len(resolved.replicas) == 1

    def test_unknown_source_in_matrix_rejected(self):
        plan = build_plan()
        matrix = JoinMatrix.dense(["ghost"], ["w1"])
        with pytest.raises(JoinMatrixError):
            resolve_operators(plan, matrix)

    def test_empty_pairing_rejected(self):
        plan = build_plan()
        matrix = JoinMatrix(["t1"], ["w1"])  # no allowed pairs
        with pytest.raises(PlanError, match="no joinable pairs"):
            resolve_operators(plan, matrix)

    def test_plan_without_join_rejected(self):
        plan = LogicalPlan()
        plan.add_source("s", node="n", rate=1.0, logical_stream="T")
        plan.add_sink("k", node="m", inputs=["s.out"])
        with pytest.raises(PlanError, match="no join"):
            resolve_operators(plan, JoinMatrix())

    def test_pairs_outside_join_streams_ignored(self):
        """Matrix rows pairing sources of the wrong logical stream do not
        create replicas for this join."""
        plan = build_plan()
        # w1 listed on the left side: not a member of stream T.
        matrix = JoinMatrix(["w1"], ["t1"])
        matrix.allow("w1", "t1")
        with pytest.raises(PlanError, match="no joinable pairs"):
            resolve_operators(plan, matrix)


class TestResolvedPlanViews:
    def test_replicas_of_join_and_source(self):
        plan = build_plan()
        matrix = JoinMatrix.dense(["t1", "t2"], ["w1"])
        resolved = resolve_operators(plan, matrix)
        assert len(resolved.replicas_of_join("join")) == 2
        assert len(resolved.replicas_of_source("w1")) == 2
        assert len(resolved.replicas_of_source("t1")) == 1

    def test_replica_lookup(self):
        plan = build_plan()
        matrix = JoinMatrix.dense(["t1"], ["w1"])
        resolved = resolve_operators(plan, matrix)
        rid = replica_id_for("join", "t1", "w1")
        assert resolved.replica(rid).left_source == "t1"
        with pytest.raises(PlanError):
            resolved.replica("nope")

    def test_replicas_of_node(self):
        plan = build_plan()
        matrix = JoinMatrix.dense(["t1", "t2"], ["w1"])
        resolved = resolve_operators(plan, matrix)
        assert len(resolved.replicas_of_node("nsink")) == 2
        assert len(resolved.replicas_of_node("nt1")) == 1
        assert len(resolved.replicas_of_node("nw1")) == 2
        assert resolved.replicas_of_node("ghost") == []


class TestResolvedPlanIndexMaintenance:
    def build_resolved(self):
        plan = build_plan()
        matrix = JoinMatrix.dense(["t1", "t2"], ["w1"])
        return resolve_operators(plan, matrix)

    def assert_indices_consistent(self, resolved):
        replicas = list(resolved.replicas)
        for replica in replicas:
            assert resolved.replica(replica.replica_id) is replica
            assert replica.replica_id in resolved
        for source_id in {r.left_source for r in replicas} | {
            r.right_source for r in replicas
        }:
            assert resolved.replicas_of_source(source_id) == [
                r
                for r in replicas
                if source_id in (r.left_source, r.right_source)
            ]
        for node_id in {n for r in replicas for n in r.pinned_nodes}:
            assert resolved.replicas_of_node(node_id) == [
                r for r in replicas if node_id in r.pinned_nodes
            ]
        for join_id in {r.join_id for r in replicas}:
            assert resolved.replicas_of_join(join_id) == [
                r for r in replicas if r.join_id == join_id
            ]

    def test_add_and_duplicate_rejected(self):
        from dataclasses import replace

        resolved = self.build_resolved()
        template = resolved.replicas[0]
        extra = replace(
            template, replica_id=replica_id_for("join", "t9", "w1"), left_source="t9"
        )
        resolved.add(extra)
        assert resolved.replica(extra.replica_id) is extra
        self.assert_indices_consistent(resolved)
        with pytest.raises(PlanError, match="already resolved"):
            resolved.add(extra)

    def test_discard(self):
        resolved = self.build_resolved()
        rid = replica_id_for("join", "t1", "w1")
        resolved.discard({rid, "unknown-id"})
        assert rid not in resolved
        assert len(resolved.replicas) == 1
        self.assert_indices_consistent(resolved)

    def test_replace_same_keys_is_surgical(self):
        from dataclasses import replace

        resolved = self.build_resolved()
        rid = replica_id_for("join", "t1", "w1")
        rebuilt = replace(resolved.replica(rid), left_rate=99.0)
        resolved.replace(rebuilt)
        assert resolved.replica(rid).left_rate == 99.0
        # The flat list slot was swapped too, not just the id map.
        assert sum(1 for r in resolved.replicas if r.replica_id == rid) == 1
        assert next(r for r in resolved.replicas if r.replica_id == rid) is rebuilt
        self.assert_indices_consistent(resolved)

    def test_replace_rekeying_reindexes(self):
        from dataclasses import replace

        resolved = self.build_resolved()
        rid = replica_id_for("join", "t1", "w1")
        rebuilt = replace(resolved.replica(rid), left_node="moved")
        resolved.replace(rebuilt)
        assert resolved.replicas_of_node("moved") == [rebuilt]
        assert resolved.replicas_of_node("nt1") == []
        self.assert_indices_consistent(resolved)

    def test_raw_append_and_reassignment(self):
        from dataclasses import replace

        resolved = self.build_resolved()
        template = resolved.replicas[0]
        extra = replace(
            template, replica_id=replica_id_for("join", "t7", "w1"), left_source="t7"
        )
        resolved.replicas.append(extra)
        assert extra.replica_id in resolved
        self.assert_indices_consistent(resolved)
        resolved.replicas = [template]
        assert extra.replica_id not in resolved
        self.assert_indices_consistent(resolved)
