"""Operator model."""

import pytest

from repro.common.errors import PlanError
from repro.query.operators import Operator, OperatorKind


class TestOperatorValidation:
    def test_source_requires_pin_and_single_output(self):
        op = Operator("s1", OperatorKind.SOURCE, outputs=["s1.out"], pinned_node="n1")
        assert op.is_source and op.is_pinned

    def test_source_without_pin_rejected(self):
        with pytest.raises(PlanError):
            Operator("s1", OperatorKind.SOURCE, outputs=["o"])

    def test_source_with_inputs_rejected(self):
        with pytest.raises(PlanError):
            Operator("s1", OperatorKind.SOURCE, inputs=["x"], outputs=["o"], pinned_node="n")

    def test_source_with_two_outputs_rejected(self):
        with pytest.raises(PlanError):
            Operator("s1", OperatorKind.SOURCE, outputs=["a", "b"], pinned_node="n")

    def test_sink_requires_inputs(self):
        with pytest.raises(PlanError):
            Operator("k", OperatorKind.SINK, pinned_node="n")

    def test_sink_with_outputs_rejected(self):
        with pytest.raises(PlanError):
            Operator("k", OperatorKind.SINK, inputs=["i"], outputs=["o"], pinned_node="n")

    def test_join_needs_two_inputs(self):
        with pytest.raises(PlanError):
            Operator("j", OperatorKind.JOIN, inputs=["only"], outputs=["o"])

    def test_join_is_free(self):
        op = Operator("j", OperatorKind.JOIN, inputs=["a", "b"], outputs=["o"])
        assert op.is_join and not op.is_pinned

    def test_empty_id_rejected(self):
        with pytest.raises(PlanError):
            Operator("", OperatorKind.JOIN, inputs=["a", "b"], outputs=["o"])

    def test_kind_coercion(self):
        op = Operator("j", "join", inputs=["a", "b"], outputs=["o"])
        assert op.kind == OperatorKind.JOIN

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Operator("s", OperatorKind.SOURCE, outputs=["o"], pinned_node="n", data_rate=-1.0)


class TestInstanceId:
    def test_single_replica(self):
        op = Operator("j", OperatorKind.JOIN, inputs=["a", "b"], outputs=["o"])
        assert op.instance_id() == "j"

    def test_multi_replica(self):
        op = Operator(
            "j", OperatorKind.JOIN, inputs=["a", "b"], outputs=["o"], replica=2, total_replicas=4
        )
        assert op.instance_id() == "j#2"
