"""Coalescing-window triggers: close on elapsed time OR buffered count."""

import pytest

from repro.common.errors import OptimizationError
from repro.serve.window import CoalescingWindow, WindowPolicy
from repro.topology.dynamics import DataRateChangeEvent


def event(i=0):
    return DataRateChangeEvent(f"n{i}", 10.0 + i)


class TestWindowPolicy:
    def test_defaults(self):
        policy = WindowPolicy()
        assert policy.window_ms == 250.0
        assert policy.max_batch == 128
        assert policy.window_s == 0.25

    @pytest.mark.parametrize("window_ms", [0.0, -5.0])
    def test_rejects_non_positive_window(self, window_ms):
        with pytest.raises(OptimizationError, match="window_ms"):
            WindowPolicy(window_ms=window_ms)

    def test_rejects_non_positive_batch(self):
        with pytest.raises(OptimizationError, match="max_batch"):
            WindowPolicy(max_batch=0)


class TestTriggers:
    def test_empty_window_never_closes(self):
        window = CoalescingWindow(WindowPolicy(window_ms=1.0, max_batch=1))
        assert window.is_empty
        assert not window.should_close(now=1e9)
        assert window.remaining_s(now=1e9) is None

    def test_count_trigger_fires_at_max_batch(self):
        window = CoalescingWindow(WindowPolicy(window_ms=60_000.0, max_batch=3))
        now = 100.0
        for i in range(2):
            window.append(event(i), now)
            assert not window.should_close(now)
        window.append(event(2), now)
        assert window.should_close(now)  # count, long before the time trigger

    def test_time_trigger_fires_after_window_ms(self):
        window = CoalescingWindow(WindowPolicy(window_ms=250.0, max_batch=10_000))
        window.append(event(), now=100.0)
        assert not window.should_close(now=100.2)
        assert window.should_close(now=100.25)
        assert window.should_close(now=100.9)

    def test_clock_starts_at_first_event(self):
        window = CoalescingWindow(WindowPolicy(window_ms=100.0, max_batch=100))
        window.append(event(0), now=50.0)
        window.append(event(1), now=50.09)  # later events don't reset it
        assert window.remaining_s(now=50.09) == pytest.approx(0.01)
        assert window.should_close(now=50.1)

    def test_remaining_is_the_poll_timeout(self):
        window = CoalescingWindow(WindowPolicy(window_ms=200.0, max_batch=100))
        window.append(event(), now=10.0)
        assert window.remaining_s(now=10.05) == pytest.approx(0.15)
        assert window.remaining_s(now=99.0) == 0.0  # clamped, never negative

    def test_close_takes_events_and_resets(self):
        window = CoalescingWindow(WindowPolicy(window_ms=100.0, max_batch=2))
        window.append(event(0), now=1.0)
        window.append(event(1), now=1.0)
        taken = window.close()
        assert [e.node_id for e in taken] == ["n0", "n1"]
        assert window.is_empty
        assert len(window) == 0
        assert window.remaining_s(now=1.0) is None
        # The next window starts its own clock.
        window.append(event(2), now=500.0)
        assert not window.should_close(now=500.05)
