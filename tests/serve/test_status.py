"""The status plane: counters, snapshots, status file, socket endpoint."""

import io
import json
import socket
import threading
import time

from repro.serve import (
    IterableSource,
    ServeLoop,
    ServeSettings,
    ServeStats,
    SocketSource,
)
from repro.topology.event_codec import encode_event_line

from tests.serve.conftest import churn_events


class TestServeStats:
    def test_counters_and_conservation(self):
        stats = ServeStats()
        for _ in range(5):
            stats.note_ingested()
        stats.note_window_applied(3, 0.010)
        stats.note_rejected()
        stats.note_shed()
        assert stats.events_ingested == 5
        assert stats.events_applied == 3
        assert stats.events_rejected == 1
        assert stats.events_shed == 1
        assert stats.events_dead_lettered == 2
        assert stats.windows_applied == 1

    def test_window_latency_percentiles(self):
        stats = ServeStats()
        for elapsed in (0.010, 0.020, 0.030, 0.040):
            stats.note_window_applied(1, elapsed)
        latency = stats.window_latency()
        assert latency.mean == 25.0  # milliseconds
        assert latency.p50 == 25.0
        assert latency.maximum == 40.0

    def test_recent_rate_uses_sample_span(self):
        ticks = iter([0.0, 10.0, 11.0, 12.0, 100.0])
        clock = lambda: next(ticks)  # noqa: E731
        stats = ServeStats(clock=clock)
        stats.note_window_applied(50, 0.01)  # at t=10
        stats.note_window_applied(50, 0.01)  # at t=11
        stats.note_window_applied(50, 0.01)  # at t=12
        # 150 events over the 2s first-to-last span, not over uptime.
        assert stats.recent_events_per_s() == 75.0


class TestStatusDocument:
    def test_snapshot_structure_after_a_run(self, small_instance, tmp_path):
        workload, session = small_instance
        events = churn_events(workload, 20)
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            ServeSettings(
                window_ms=30.0,
                max_batch=8,
                queue_size=32,
                exit_on_eof=True,
                status_interval_s=0,
            ),
            status_file=tmp_path / "status.json",
            status_stream=io.StringIO(),
        )
        assert loop.run() == 0
        snapshot = loop.snapshot()
        assert snapshot["events"]["ingested"] == 20
        assert snapshot["events"]["applied"] == 20
        assert snapshot["queue"]["size"] == 32
        assert snapshot["queue"]["depth"] == 0
        assert snapshot["windows"]["applied"] >= 3
        assert snapshot["windows"]["latency_ms"]["p99"] >= (
            snapshot["windows"]["latency_ms"]["p50"]
        )
        assert set(snapshot["overload"]) == {
            "percentage",
            "overloaded",
            "hosting",
            "max_utilization",
        }
        # The embedded session summary is the serialization-layer one.
        assert {"joins", "nodes", "packing", "state_plane"} <= set(
            snapshot["session"]
        )

        # The status file holds the same document shape, as JSON.
        on_disk = json.loads((tmp_path / "status.json").read_text())
        assert on_disk["events"]["applied"] == 20
        assert on_disk["uptime_s"] > 0

    def test_status_line_is_compact_and_informative(self, small_instance):
        workload, session = small_instance
        events = churn_events(workload, 10)
        stream = io.StringIO()
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            ServeSettings(
                window_ms=30.0,
                max_batch=10,
                queue_size=16,
                exit_on_eof=True,
                status_interval_s=0,
            ),
            status_stream=stream,
        )
        assert loop.run() == 0
        final_report = stream.getvalue().strip().splitlines()[-1]
        assert final_report.startswith("serve:")
        assert "queue" in final_report
        assert "dead-letter" in final_report
        assert "overload" in final_report


class TestSocketEndpoint:
    def test_socket_ingests_events_and_serves_status(
        self, small_instance, tmp_path
    ):
        workload, session = small_instance
        events = churn_events(workload, 6)
        path = tmp_path / "serve.sock"
        loop = ServeLoop(
            session,
            [SocketSource(path)],
            ServeSettings(
                window_ms=40.0,
                max_batch=6,
                queue_size=32,
                status_interval_s=0,
            ),
            status_stream=io.StringIO(),
        )
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(code=loop.run()), daemon=True
        )
        thread.start()
        deadline = time.monotonic() + 10.0
        while not path.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert path.exists(), "socket source never bound its path"

        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.connect(str(path))
        with client:
            reader = client.makefile("r")
            payload = "".join(
                encode_event_line(event) + "\n" for event in events
            )
            client.sendall(payload.encode())
            deadline = time.monotonic() + 10.0
            while (
                loop.stats.events_applied < 6
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            # An on-demand status probe over the same socket.
            client.sendall(b"status\n")
            snapshot = json.loads(reader.readline())
        assert snapshot["events"]["ingested"] == 6
        assert snapshot["events"]["applied"] == 6
        assert snapshot["windows"]["applied"] >= 1

        loop.request_stop("test")
        thread.join(20.0)
        assert result["code"] == 0
        assert not path.exists(), "socket path is unlinked on shutdown"
