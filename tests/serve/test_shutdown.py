"""Graceful shutdown: stop requests drain queue + in-flight window."""

import io
import json
import threading
import time

from repro.serve import (
    DeadLetterArchive,
    DeltaArchive,
    IterableSource,
    ServeLoop,
    ServeSettings,
)
from repro.topology.event_codec import decode_event_dict

from tests.serve.conftest import churn_events


def run_in_thread(loop):
    result = {}

    def target():
        result["code"] = loop.run()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, result


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestGracefulDrain:
    def test_stop_drains_in_flight_window_and_archives_deltas(
        self, small_instance, tmp_path
    ):
        """Events buffered but unapplied at stop time still apply + archive."""
        workload, session = small_instance
        events = churn_events(workload, 9)
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            # Triggers that cannot fire on their own: the 9 events sit in
            # the in-flight window until the stop request drains them.
            ServeSettings(
                window_ms=600_000.0,
                max_batch=1_000,
                queue_size=64,
                status_interval_s=0,
            ),
            deltas=DeltaArchive(tmp_path / "deltas.jsonl"),
            dead_letters=DeadLetterArchive(tmp_path / "dead.jsonl"),
            status_file=tmp_path / "status.json",
            status_stream=io.StringIO(),
        )
        thread, result = run_in_thread(loop)
        assert wait_until(lambda: loop.stats.events_ingested == 9)
        assert loop.stats.events_applied == 0  # nothing has triggered yet
        loop.request_stop("test-stop")
        thread.join(20.0)
        assert not thread.is_alive()
        assert result["code"] == 0
        assert loop.stop_reason == "test-stop"
        assert loop.stats.events_applied == 9
        assert loop.stats.windows_applied == 1

        # The pending window's PlanDelta reached the archive file.
        entries = [
            json.loads(line)
            for line in (tmp_path / "deltas.jsonl").read_text().splitlines()
        ]
        assert len(entries) == 1
        assert len(entries[0]["events"]) == 9
        # The batch may coalesce duplicates internally: all 9 staged,
        # possibly fewer executed.
        assert entries[0]["delta"]["events_staged"] == 9
        assert 0 < entries[0]["delta"]["events_applied"] <= 9
        # Archived wire-form events decode back to the applied batch.
        decoded = [decode_event_dict(event) for event in entries[0]["events"]]
        assert decoded == events

        # The final status report landed in the status file.
        status = json.loads((tmp_path / "status.json").read_text())
        assert status["events"]["applied"] == 9
        assert status["windows"]["applied"] == 1

    def test_drain_chunks_leftovers_at_max_batch(self, small_instance):
        workload, session = small_instance
        events = churn_events(workload, 25)
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            ServeSettings(
                window_ms=600_000.0,
                max_batch=10,
                queue_size=64,
                status_interval_s=0,
            ),
            status_stream=io.StringIO(),
        )
        thread, result = run_in_thread(loop)
        assert wait_until(lambda: loop.stats.events_ingested == 25)
        loop.request_stop()
        thread.join(20.0)
        assert result["code"] == 0
        assert loop.stats.events_applied == 25
        # Drained windows respect the batch bound (10 + 10 + 5).
        sizes = [len(entry["events"]) for entry in loop.deltas.entries]
        assert sum(sizes) == 25
        assert max(sizes) <= 10

    def test_exit_on_eof_drains_everything(self, small_instance):
        workload, session = small_instance
        events = churn_events(workload, 17)
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            ServeSettings(
                window_ms=50.0,
                max_batch=5,
                queue_size=64,
                exit_on_eof=True,
                status_interval_s=0,
            ),
            status_stream=io.StringIO(),
        )
        assert loop.run() == 0
        assert loop.stop_reason == "eof"
        assert loop.stats.events_applied == 17

    def test_max_windows_bounds_the_run(self, small_instance):
        workload, session = small_instance
        events = churn_events(workload, 60)
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            ServeSettings(
                window_ms=600_000.0,
                max_batch=10,
                queue_size=256,
                max_windows=2,
                status_interval_s=0,
            ),
            status_stream=io.StringIO(),
        )
        assert loop.run() == 0
        assert loop.stop_reason == "max-windows"
        assert loop.stats.windows_applied == 2
        assert loop.stats.events_applied == 20

    def test_session_closed_on_exit(self, small_instance):
        workload, session = small_instance
        closed = []
        original_close = session.close

        def tracking_close():
            closed.append(True)
            original_close()

        session.close = tracking_close
        try:
            events = churn_events(workload, 4)
            loop = ServeLoop(
                session,
                [IterableSource(events)],
                ServeSettings(
                    window_ms=20.0,
                    max_batch=4,
                    queue_size=16,
                    exit_on_eof=True,
                    status_interval_s=0,
                ),
                status_stream=io.StringIO(),
            )
            assert loop.run() == 0
            assert closed, "ServeLoop.run must close the session"
        finally:
            session.close = original_close
