"""Bounded ingress and the three overflow policies."""

import io
import threading
import time

import pytest

from repro.common.errors import OptimizationError
from repro.serve import (
    IngressQueue,
    IterableSource,
    OVERFLOW_SHED,
    REASON_SHED,
    ServeLoop,
    ServeSettings,
)
from repro.topology.dynamics import DataRateChangeEvent

from tests.serve.conftest import churn_events


def event(i, node="s"):
    return DataRateChangeEvent(node, 10.0 + i)


class TestIngressQueue:
    def test_rejects_bad_configuration(self):
        with pytest.raises(OptimizationError, match="queue size"):
            IngressQueue(0)
        with pytest.raises(OptimizationError, match="overflow policy"):
            IngressQueue(4, policy="drop-oldest")

    def test_fifo_and_depth(self):
        queue = IngressQueue(8)
        for i in range(3):
            assert queue.put(event(i, node=f"n{i}"))
        assert queue.depth == 3
        assert queue.get(timeout=0).node_id == "n0"
        assert queue.depth == 2

    def test_get_times_out_empty(self):
        queue = IngressQueue(2)
        started = time.monotonic()
        assert queue.get(timeout=0.05) is None
        assert time.monotonic() - started >= 0.04

    def test_block_policy_stalls_producer_until_consumer_drains(self):
        queue = IngressQueue(2, policy="block")
        assert queue.put(event(0, "a"))
        assert queue.put(event(1, "b"))
        accepted = threading.Event()

        def producer():
            queue.put(event(2, "c"))
            accepted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not accepted.wait(0.15)  # full queue: producer is stalled
        assert queue.get(timeout=0) is not None
        assert accepted.wait(1.0)  # freed slot unblocks it
        assert queue.depth == 2
        thread.join(1.0)

    def test_block_policy_admits_over_capacity_while_stopping(self):
        queue = IngressQueue(1, policy="block")
        assert queue.put(event(0, "a"))
        assert queue.put(event(1, "b"), stopping=lambda: True)
        assert queue.depth == 2  # drain will consume it immediately

    def test_shed_policy_drops_newest_with_record(self):
        shed = []
        queue = IngressQueue(2, policy="shed", on_shed=shed.append)
        assert queue.put(event(0, "a"))
        assert queue.put(event(1, "b"))
        assert not queue.put(event(2, "c"))
        assert [e.node_id for e in shed] == ["c"]
        assert queue.depth == 2  # queued events untouched

    def test_coalesce_policy_compacts_queue_in_place(self):
        dropped = []
        queue = IngressQueue(3, policy="coalesce", on_coalesced=dropped.append)
        # Three rate changes on one node: last-wins coalescing collapses
        # them, so the full queue compacts to a single event.
        for i in range(3):
            assert queue.put(event(i, "s"))
        assert queue.put(event(3, "s"))
        assert dropped == [2]
        assert queue.depth == 2
        drained = queue.drain()
        # The survivor of the compacted run is the latest pre-overflow
        # write; the overflowing event queues behind it.
        assert [e.new_rate for e in drained] == [12.0, 13.0]

    def test_coalesce_policy_blocks_when_nothing_compacts(self):
        queue = IngressQueue(2, policy="coalesce")
        assert queue.put(event(0, "a"))
        assert queue.put(event(1, "b"))
        accepted = threading.Event()

        def producer():
            queue.put(event(2, "c"))  # distinct nodes: nothing to drop
            accepted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not accepted.wait(0.15)
        queue.get(timeout=0)
        assert accepted.wait(1.0)
        thread.join(1.0)


class TestLoopBackpressure:
    def test_shed_policy_dead_letters_and_survives(
        self, small_instance, monkeypatch
    ):
        """A slow applier + tiny queue sheds load without losing count."""
        workload, session = small_instance
        original_apply = session.apply

        def slow_apply(changes):
            time.sleep(0.05)
            return original_apply(changes)

        monkeypatch.setattr(session, "apply", slow_apply)
        events = churn_events(workload, 80)
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            ServeSettings(
                window_ms=10.0,
                max_batch=4,
                queue_size=4,
                overflow=OVERFLOW_SHED,
                exit_on_eof=True,
                status_interval_s=0,
            ),
            status_stream=io.StringIO(),
        )
        assert loop.run() == 0
        stats = loop.stats
        assert stats.events_shed > 0, "tiny queue behind a slow applier must shed"
        assert stats.events_shed == loop.dead_letters.count(REASON_SHED)
        # Conservation: every ingested event was applied or dead-lettered.
        assert (
            stats.events_applied + stats.events_dead_lettered
            == stats.events_ingested
        )
        for record in loop.dead_letters.records:
            if record.reason == REASON_SHED:
                assert record.event is not None  # shed events are archived
