"""Shared fixtures for the serving-daemon tests.

Sessions here are deliberately small (80 nodes) so every test pays a
sub-second initial solve; the end-to-end bit-identity test builds its
own n=1000 instance.
"""

import pytest

from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.topology.dynamics import churn_event_stream
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload


def build_session(n=80, seed=5):
    workload = synthetic_opp_workload(n, seed=seed)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    session = Nova(NovaConfig(seed=seed)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    return workload, session


def churn_events(workload, count, seed=11):
    """A reproducible prefix of the unbounded churn stream."""
    stream = churn_event_stream(workload.topology, workload.plan, seed=seed)
    return [next(stream) for _ in range(count)]


def placement_signature(session):
    """The placement as a comparable set (bit-identity assertions)."""
    return {
        (s.sub_id, s.node_id, round(s.charged_capacity, 12))
        for s in session.placement.sub_replicas
    }


@pytest.fixture()
def small_instance():
    workload, session = build_session()
    yield workload, session
    session.close()
