"""End-to-end serving: the real CLI over stdin, and bit-identity at n=1e3.

The bit-identity contract is the serving daemon's core correctness
claim: feeding events through sources, queues, windows, and the apply
loop must land on exactly the placement that direct ``session.apply``
of the same coalesced batches produces.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.changeset import ChangeSet
from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.serve import IterableSource, ServeLoop, ServeSettings
from repro.topology.dynamics import churn_event_stream
from repro.topology.event_codec import decode_event_dict, encode_event_line
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload

from tests.serve.conftest import churn_events, placement_signature

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def serve_command(*extra):
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--workload",
        "synthetic",
        "--nodes",
        "120",
        "--seed",
        "3",
        "--window-ms",
        "100",
        "--max-batch",
        "50",
        *extra,
    ]


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def event_lines(count, nodes=120, seed=3, stream_seed=5):
    workload = synthetic_opp_workload(nodes, seed=seed)
    stream = churn_event_stream(workload.topology, workload.plan, seed=stream_seed)
    return [encode_event_line(next(stream)) for _ in range(count)]


class TestServeCli:
    def test_stdin_run_applies_archives_and_exits_zero(self, tmp_path):
        lines = event_lines(120) + ["definitely not an event"]
        deltas = tmp_path / "deltas.jsonl"
        dead = tmp_path / "dead.jsonl"
        status = tmp_path / "status.json"
        result = subprocess.run(
            serve_command(
                "--exit-on-eof",
                "--save-deltas",
                str(deltas),
                "--dead-letter",
                str(dead),
                "--status-file",
                str(status),
                "--status-interval",
                "0",
            ),
            input="\n".join(lines) + "\n",
            capture_output=True,
            text=True,
            env=subprocess_env(),
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        final = json.loads(status.read_text())
        assert final["events"]["ingested"] == 121
        assert final["events"]["applied"] == 120
        assert final["events"]["dead_lettered"] == 1
        dead_records = [
            json.loads(line) for line in dead.read_text().splitlines()
        ]
        assert dead_records[0]["reason"] == "malformed"
        assert dead_records[0]["raw"] == "definitely not an event"
        archived = [
            json.loads(line) for line in deltas.read_text().splitlines()
        ]
        assert sum(len(entry["events"]) for entry in archived) == 120

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        status = tmp_path / "status.json"
        process = subprocess.Popen(
            serve_command(
                "--status-file", str(status), "--status-interval", "0.5"
            ),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=subprocess_env(),
        )
        try:
            for line in event_lines(60):
                process.stdin.write(line + "\n")
            process.stdin.flush()
            deadline = time.monotonic() + 60.0
            applied = 0
            while time.monotonic() < deadline:
                if status.exists():
                    applied = json.loads(status.read_text())["events"]["applied"]
                    if applied >= 60:
                        break
                time.sleep(0.1)
            assert applied >= 60, "daemon never applied the piped events"
            # stdin stays open: the daemon must be idling, not exiting.
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=60)
            assert code == 0, process.stderr.read()
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=10)

    def test_bad_flags_rejected_before_planning(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--window-ms",
                "0",
            ],
            capture_output=True,
            text=True,
            env=subprocess_env(),
            timeout=60,
        )
        assert result.returncode == 2
        assert "window_ms" in result.stderr

    def test_unknown_source_rejected(self):
        result = subprocess.run(
            serve_command("--source", "carrier-pigeon:coop"),
            capture_output=True,
            text=True,
            env=subprocess_env(),
            timeout=60,
        )
        assert result.returncode == 2
        assert "unknown source" in result.stderr


@pytest.mark.slow
class TestBitIdentity:
    def test_served_placement_matches_direct_apply_n1000(self):
        """Daemon path == direct ``session.apply`` of the same batches."""
        nodes, seed = 1000, 9

        def fresh_session():
            # Each session gets its own workload instance: churn events
            # mutate the topology/plan in place during apply, so sharing
            # one workload across sessions would cross-contaminate them.
            workload = synthetic_opp_workload(nodes, seed=seed)
            latency = DenseLatencyMatrix.from_topology(workload.topology)
            return Nova(NovaConfig(seed=seed)).optimize(
                workload.topology,
                workload.plan,
                workload.matrix,
                latency=latency,
            )

        event_source = synthetic_opp_workload(nodes, seed=seed)
        stream = churn_event_stream(
            event_source.topology, event_source.plan, seed=21
        )
        events = [next(stream) for _ in range(300)]

        served = fresh_session()
        loop = ServeLoop(
            served,
            [IterableSource(events)],
            # A distant time trigger makes windowing deterministic: every
            # window is count-triggered at exactly 25 events.
            ServeSettings(
                window_ms=600_000.0,
                max_batch=25,
                queue_size=512,
                exit_on_eof=True,
                status_interval_s=0,
            ),
            status_stream=io.StringIO(),
        )
        assert loop.run() == 0
        assert loop.stats.events_applied == 300
        assert loop.stats.events_dead_lettered == 0
        served_signature = placement_signature(served)

        # Replay the daemon's own archived batches through a fresh
        # session, directly — no queue, no windows, no loop.
        batches = [
            [decode_event_dict(event) for event in entry["events"]]
            for entry in loop.deltas.entries
        ]
        assert [len(batch) for batch in batches] == [25] * 12
        with fresh_session() as control:
            for batch in batches:
                control.apply(ChangeSet(batch))
            control_signature = placement_signature(control)

        assert served_signature == control_signature

    def test_served_placement_matches_direct_apply_small(self, small_instance):
        """The same contract, fast, on the shared 80-node instance."""
        workload, session = small_instance
        events = churn_events(workload, 60, seed=13)
        loop = ServeLoop(
            session,
            [IterableSource(events)],
            ServeSettings(
                window_ms=600_000.0,
                max_batch=15,
                queue_size=128,
                exit_on_eof=True,
                status_interval_s=0,
            ),
            status_stream=io.StringIO(),
        )
        assert loop.run() == 0
        served_signature = placement_signature(session)

        workload2 = synthetic_opp_workload(80, seed=5)
        latency2 = DenseLatencyMatrix.from_topology(workload2.topology)
        with Nova(NovaConfig(seed=5)).optimize(
            workload2.topology,
            workload2.plan,
            workload2.matrix,
            latency=latency2,
        ) as control:
            for entry in loop.deltas.entries:
                batch = [
                    decode_event_dict(event) for event in entry["events"]
                ]
                control.apply(ChangeSet(batch))
            assert placement_signature(control) == served_signature
