"""Dead-lettering and failure recovery: nothing kills the serving loop."""

import io

import pytest

from repro.serve import (
    DeadLetterArchive,
    IterableSource,
    REASON_APPLY_FAILED,
    REASON_MALFORMED,
    REASON_REJECTED,
    ServeLoop,
    ServeSettings,
    WindowApplier,
)
from repro.topology.dynamics import (
    AddWorkerEvent,
    DataRateChangeEvent,
    event_to_dict,
)
from repro.topology.event_codec import encode_event_line

from tests.serve.conftest import churn_events, placement_signature


def make_loop(session, items, **overrides):
    defaults = dict(
        window_ms=30.0,
        max_batch=16,
        queue_size=256,
        exit_on_eof=True,
        status_interval_s=0,
    )
    defaults.update(overrides)
    settings = ServeSettings(**defaults)
    return ServeLoop(
        session,
        [IterableSource(items)],
        settings,
        status_stream=io.StringIO(),
    )


class TestArchive:
    def test_records_counts_and_jsonl(self, tmp_path):
        import json

        archive = DeadLetterArchive(tmp_path / "dead.jsonl")
        archive.record(REASON_MALFORMED, "boom", raw="not json")
        archive.record(
            REASON_REJECTED,
            ValueError("nope"),
            event={"type": "remove_node"},
            window=3,
        )
        archive.close()
        assert len(archive) == 2
        assert archive.count(REASON_MALFORMED) == 1
        assert archive.count(REASON_REJECTED) == 1
        lines = [
            json.loads(line)
            for line in (tmp_path / "dead.jsonl").read_text().splitlines()
        ]
        assert lines[0]["reason"] == REASON_MALFORMED
        assert lines[0]["raw"] == "not json"
        assert lines[1]["error"] == "nope"
        assert lines[1]["window"] == 3
        assert all("at" in line for line in lines)


class TestMalformedInput:
    def test_undecodable_lines_dead_letter_and_loop_survives(
        self, small_instance
    ):
        workload, session = small_instance
        good = churn_events(workload, 20)
        items = (
            ["this is not json", '{"type": "warp_drive", "node_id": "x"}']
            + [encode_event_line(event) for event in good]
            + ['{"no_type": true}']
        )
        loop = make_loop(session, items)
        assert loop.run() == 0
        assert loop.stats.events_applied == 20
        assert loop.dead_letters.count(REASON_MALFORMED) == 3
        raws = [
            record.raw
            for record in loop.dead_letters.records
            if record.reason == REASON_MALFORMED
        ]
        assert "this is not json" in raws  # offending payload preserved


class TestRejectedEvents:
    def test_validation_rejects_dead_letter_alone(self, small_instance):
        """One bad event dead-letters; its window-mates still apply."""
        workload, session = small_instance
        good = churn_events(workload, 10)
        items = good[:5] + [DataRateChangeEvent("ghost-node", 50.0)] + good[5:]
        loop = make_loop(session, items)
        assert loop.run() == 0
        assert loop.stats.events_applied == 10
        assert loop.stats.events_rejected == 1
        rejected = [
            record
            for record in loop.dead_letters.records
            if record.reason == REASON_REJECTED
        ]
        assert len(rejected) == 1
        assert rejected[0].event["node_id"] == "ghost-node"
        assert "ghost-node" in rejected[0].error

    def test_duplicate_add_within_window_rejected(self, small_instance):
        """Window admission mirrors batch validation, not just node lookup."""
        workload, session = small_instance
        neighbors = {
            node_id: 5.0 for node_id in list(session.topology.node_ids)[:6]
        }
        items = [
            AddWorkerEvent("dup-w", 200.0, neighbors),
            AddWorkerEvent("dup-w", 300.0, neighbors),  # already staged
        ]
        loop = make_loop(session, items)
        assert loop.run() == 0
        assert loop.stats.events_applied == 1
        assert loop.dead_letters.count(REASON_REJECTED) == 1


class TestApplyFailure:
    def test_transient_failure_retries_at_half_window(
        self, small_instance, monkeypatch
    ):
        """First apply blows up, rollback happens, halves succeed."""
        workload, session = small_instance
        events = churn_events(workload, 8)
        applier = WindowApplier(session)
        original = session.place_replicas
        calls = {"count": 0}

        def flaky(replicas):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("injected transient fault")
            return original(replicas)

        monkeypatch.setattr(session, "place_replicas", flaky)
        applied = applier.apply(events, window=0)
        assert len(applied) == 2  # two half-size batches
        assert all(item.retry for item in applied)
        assert [len(item.events) for item in applied] == [4, 4]
        assert applier.stats.window_retries == 1
        assert applier.stats.windows_failed == 0
        assert applier.stats.events_applied == 8
        assert len(applier.dead_letters) == 0

    def test_persistent_failure_dead_letters_and_rolls_back(
        self, small_instance, monkeypatch
    ):
        """Both halves fail: events dead-letter, state is bit-identical."""
        workload, session = small_instance
        events = churn_events(workload, 6)
        before = placement_signature(session)
        available_before = dict(session.available)
        applier = WindowApplier(session)

        def boom(replicas):
            raise RuntimeError("injected persistent fault")

        monkeypatch.setattr(session, "place_replicas", boom)
        applied = applier.apply(events, window=7)
        assert applied == []
        assert applier.stats.window_retries == 1
        assert applier.stats.windows_failed >= 1
        failed = [
            record
            for record in applier.dead_letters.records
            if record.reason == REASON_APPLY_FAILED and record.event is not None
        ]
        # Every event of the failed window is archived individually.
        archived = [record.event for record in failed]
        assert archived == [event_to_dict(event) for event in events]
        assert all(record.window == 7 for record in failed)
        # Rollback contract: the journal restored the placement exactly.
        assert placement_signature(session) == before
        assert dict(session.available) == available_before

    def test_strict_mode_raises_for_replay(self, small_instance, monkeypatch):
        workload, session = small_instance
        events = churn_events(workload, 4)
        applier = WindowApplier(session)

        def boom(replicas):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(session, "place_replicas", boom)
        with pytest.raises(RuntimeError, match="injected fault"):
            applier.apply(events, window=0, strict=True)
        assert applier.stats.window_retries == 0
        assert len(applier.dead_letters) == 0

    def test_loop_survives_failed_window(self, small_instance, monkeypatch):
        """A poisoned window dead-letters; later windows keep applying."""
        workload, session = small_instance
        events = churn_events(workload, 24)
        original = session.place_replicas
        state = {"poisoned": True}

        def sometimes(replicas):
            if state["poisoned"]:
                raise RuntimeError("poisoned window")
            return original(replicas)

        monkeypatch.setattr(session, "place_replicas", sometimes)
        # A long time trigger makes every window count-triggered (8 events).
        loop = make_loop(session, events, max_batch=8, window_ms=10_000.0)

        # Heal the injection after the first window fails completely.
        failures = []
        original_note = loop.stats.note_window_failed

        def heal_after(count):
            original_note(count)
            failures.append(count)
            if len(failures) >= 2:  # both halves of window 0 failed
                state["poisoned"] = False

        monkeypatch.setattr(loop.stats, "note_window_failed", heal_after)
        assert loop.run() == 0
        assert loop.stats.windows_failed >= 2
        assert loop.stats.events_applied > 0, "loop kept serving after failure"
        assert loop.dead_letters.count(REASON_APPLY_FAILED) >= 8
