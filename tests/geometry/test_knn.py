"""Neighbour index facade."""

import numpy as np
import pytest

from repro.common.errors import OptimizationError, UnknownNodeError
from repro.geometry.knn import APPROXIMATE_BACKEND, EXACT_BACKEND, NeighborIndex


def make_index(n=30, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, (n, 2))
    ids = [f"n{i}" for i in range(n)]
    return NeighborIndex(ids, points, **kwargs), ids, points


class TestBackendSelection:
    def test_small_uses_exact(self):
        index, _, _ = make_index(10)
        assert index.backend == EXACT_BACKEND

    def test_large_uses_approximate(self):
        index, _, _ = make_index(50, exact_limit=20)
        assert index.backend == APPROXIMATE_BACKEND

    def test_explicit_backend(self):
        index, _, _ = make_index(10, backend=APPROXIMATE_BACKEND)
        assert index.backend == APPROXIMATE_BACKEND

    def test_unknown_backend(self):
        with pytest.raises(OptimizationError):
            make_index(10, backend="faiss")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(OptimizationError):
            NeighborIndex(["a", "a"], np.zeros((2, 2)))


class TestQuery:
    def test_returns_id_distance_pairs(self):
        index, ids, points = make_index(30)
        results = index.query(points[3], k=1)
        assert results[0][0] == "n3"
        assert results[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_exclusion(self):
        index, ids, points = make_index(30)
        results = index.query(points[3], k=1, exclude={"n3"})
        assert results[0][0] != "n3"

    def test_k_respected_and_sorted(self):
        index, _, points = make_index(30)
        results = index.query([50.0, 50.0], k=5)
        assert len(results) == 5
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_invalid_k(self):
        index, _, _ = make_index(5)
        with pytest.raises(OptimizationError):
            index.query([0.0, 0.0], k=0)


class TestMaintenance:
    def test_add_then_query(self):
        index, _, _ = make_index(10)
        index.add("new", [999.0, 999.0])
        results = index.query([999.0, 999.0], k=1)
        assert results[0][0] == "new"
        assert len(index) == 11

    def test_add_duplicate_rejected(self):
        index, _, _ = make_index(5)
        with pytest.raises(OptimizationError):
            index.add("n0", [0.0, 0.0])

    def test_add_wrong_dim_rejected(self):
        index, _, _ = make_index(5)
        with pytest.raises(OptimizationError):
            index.add("x", [0.0, 0.0, 0.0])

    def test_remove_then_query_skips(self):
        index, _, points = make_index(10)
        index.remove("n3")
        results = index.query(points[3], k=1)
        assert results[0][0] != "n3"
        assert "n3" not in index

    def test_remove_unknown_raises(self):
        index, _, _ = make_index(5)
        with pytest.raises(UnknownNodeError):
            index.remove("ghost")

    def test_readd_after_remove(self):
        index, _, points = make_index(10)
        index.remove("n3")
        index.add("n3", points[3])
        results = index.query(points[3], k=1)
        assert results[0][0] == "n3"

    def test_readd_with_new_position(self):
        index, _, points = make_index(10)
        index.remove("n3")
        index.add("n3", [777.0, 777.0])
        results = index.query([777.0, 777.0], k=1)
        assert results[0][0] == "n3"

    def test_update_moves_node(self):
        index, _, _ = make_index(10)
        index.update("n2", [-500.0, -500.0])
        results = index.query([-500.0, -500.0], k=1)
        assert results[0][0] == "n2"

    def test_rebuild_triggered_by_many_adds(self):
        index, _, _ = make_index(8)
        for i in range(10):
            index.add(f"extra{i}", [float(i), float(i)])
        assert len(index) == 18
        results = index.query([4.0, 4.0], k=1)
        assert results[0][0] == "extra4"

    def test_position_lookup(self):
        index, _, points = make_index(5)
        assert np.allclose(index.position("n1"), points[1])
        index.remove("n1")
        with pytest.raises(UnknownNodeError):
            index.position("n1")

    def test_cannot_rebuild_empty(self):
        index, ids, _ = make_index(2)
        index.remove("n0")
        index.remove("n1")
        with pytest.raises(OptimizationError):
            index.rebuild()


class TestChurnRecall:
    """Heavy churn must not starve queries of their k results.

    Tombstoned entries thin out the approximate backend's leaves and
    excluded ids consume result slots; the over-fetch must account for
    both (and the annoy fallback must supplement short candidate pools),
    or k live nodes silently become unreachable.
    """

    def make_churned(self, n=300, removed=270):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 100, (n, 2))
        ids = [f"n{i}" for i in range(n)]
        index = NeighborIndex(
            ids, points, backend=APPROXIMATE_BACKEND, rebuild_fraction=10.0
        )
        for i in range(removed):
            index.remove(f"n{i}")
        return index, ids, points

    def test_full_k_survives_tombstones(self):
        index, _, _ = self.make_churned()
        assert len(index) == 30
        results = index.query([50.0, 50.0], k=20)
        assert len(results) == 20

    def test_full_k_survives_tombstones_and_exclusions(self):
        index, ids, _ = self.make_churned()
        live = [f"n{i}" for i in range(270, 300)]
        results = index.query([50.0, 50.0], k=5, exclude=set(live[:25]))
        assert len(results) == 5
        assert {nid for nid, _ in results} == set(live[25:])

    def test_exact_backend_full_k_after_drifted_readds(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 100, (40, 2))
        ids = [f"n{i}" for i in range(40)]
        index = NeighborIndex(ids, points, rebuild_fraction=10.0)
        for i in range(30):
            index.remove(f"n{i}")
        for i in range(5):
            index.add(f"n{i}", points[i] + 0.5)
        results = index.query([50.0, 50.0], k=15)
        assert len(results) == 15


class TestQueryBatch:
    def test_exhaustion_flag(self):
        index, ids, points = make_index(10)
        results, exhausted = index.query_batch(points[0], k=5)
        assert len(results) == 5 and not exhausted
        results, exhausted = index.query_batch(points[0], k=10)
        assert len(results) == 10 and exhausted is False
        for node_id in ids:
            index.set_value(node_id, 1.0)
        index.set_value("n7", 50.0)
        results, exhausted = index.query_batch(points[0], k=4, min_value=10.0)
        assert [nid for nid, _ in results] == ["n7"]
        assert exhausted

    def test_batch_respects_min_value(self):
        index, ids, points = make_index(30)
        for node_id in ids:
            index.set_value(node_id, float(node_id[1:]))
        results, _ = index.query_batch([50.0, 50.0], k=8, min_value=20.0)
        assert len(results) == 8
        assert all(float(nid[1:]) >= 20.0 for nid, _ in results)
