"""Neighbour index facade."""

import numpy as np
import pytest

from repro.common.errors import OptimizationError, UnknownNodeError
from repro.geometry.knn import APPROXIMATE_BACKEND, EXACT_BACKEND, NeighborIndex


def make_index(n=30, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, (n, 2))
    ids = [f"n{i}" for i in range(n)]
    return NeighborIndex(ids, points, **kwargs), ids, points


class TestBackendSelection:
    def test_small_uses_exact(self):
        index, _, _ = make_index(10)
        assert index.backend == EXACT_BACKEND

    def test_large_uses_approximate(self):
        index, _, _ = make_index(50, exact_limit=20)
        assert index.backend == APPROXIMATE_BACKEND

    def test_explicit_backend(self):
        index, _, _ = make_index(10, backend=APPROXIMATE_BACKEND)
        assert index.backend == APPROXIMATE_BACKEND

    def test_unknown_backend(self):
        with pytest.raises(OptimizationError):
            make_index(10, backend="faiss")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(OptimizationError):
            NeighborIndex(["a", "a"], np.zeros((2, 2)))


class TestQuery:
    def test_returns_id_distance_pairs(self):
        index, ids, points = make_index(30)
        results = index.query(points[3], k=1)
        assert results[0][0] == "n3"
        assert results[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_exclusion(self):
        index, ids, points = make_index(30)
        results = index.query(points[3], k=1, exclude={"n3"})
        assert results[0][0] != "n3"

    def test_k_respected_and_sorted(self):
        index, _, points = make_index(30)
        results = index.query([50.0, 50.0], k=5)
        assert len(results) == 5
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_invalid_k(self):
        index, _, _ = make_index(5)
        with pytest.raises(OptimizationError):
            index.query([0.0, 0.0], k=0)


class TestMaintenance:
    def test_add_then_query(self):
        index, _, _ = make_index(10)
        index.add("new", [999.0, 999.0])
        results = index.query([999.0, 999.0], k=1)
        assert results[0][0] == "new"
        assert len(index) == 11

    def test_add_duplicate_rejected(self):
        index, _, _ = make_index(5)
        with pytest.raises(OptimizationError):
            index.add("n0", [0.0, 0.0])

    def test_add_wrong_dim_rejected(self):
        index, _, _ = make_index(5)
        with pytest.raises(OptimizationError):
            index.add("x", [0.0, 0.0, 0.0])

    def test_remove_then_query_skips(self):
        index, _, points = make_index(10)
        index.remove("n3")
        results = index.query(points[3], k=1)
        assert results[0][0] != "n3"
        assert "n3" not in index

    def test_remove_unknown_raises(self):
        index, _, _ = make_index(5)
        with pytest.raises(UnknownNodeError):
            index.remove("ghost")

    def test_readd_after_remove(self):
        index, _, points = make_index(10)
        index.remove("n3")
        index.add("n3", points[3])
        results = index.query(points[3], k=1)
        assert results[0][0] == "n3"

    def test_readd_with_new_position(self):
        index, _, points = make_index(10)
        index.remove("n3")
        index.add("n3", [777.0, 777.0])
        results = index.query([777.0, 777.0], k=1)
        assert results[0][0] == "n3"

    def test_update_moves_node(self):
        index, _, _ = make_index(10)
        index.update("n2", [-500.0, -500.0])
        results = index.query([-500.0, -500.0], k=1)
        assert results[0][0] == "n2"

    def test_rebuild_triggered_by_many_adds(self):
        index, _, _ = make_index(8)
        for i in range(10):
            index.add(f"extra{i}", [float(i), float(i)])
        assert len(index) == 18
        results = index.query([4.0, 4.0], k=1)
        assert results[0][0] == "extra4"

    def test_position_lookup(self):
        index, _, points = make_index(5)
        assert np.allclose(index.position("n1"), points[1])
        index.remove("n1")
        with pytest.raises(UnknownNodeError):
            index.position("n1")

    def test_cannot_rebuild_empty(self):
        index, ids, _ = make_index(2)
        index.remove("n0")
        index.remove("n1")
        with pytest.raises(OptimizationError):
            index.rebuild()
