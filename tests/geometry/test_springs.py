"""Spring-force relaxation for multi-operator graphs."""

import numpy as np
import pytest

from repro.common.errors import OptimizationError
from repro.geometry.median import weiszfeld
from repro.geometry.springs import Spring, SpringSystem


class TestSpring:
    def test_self_spring_rejected(self):
        with pytest.raises(OptimizationError):
            Spring("a", "a")

    def test_non_positive_weight_rejected(self):
        with pytest.raises(OptimizationError):
            Spring("a", "b", 0.0)


class TestSpringSystem:
    def test_single_free_body_reduces_to_geometric_median(self):
        """A free body connected only to pinned anchors settles at their
        geometric median — the join-replica case of Phase II."""
        anchors = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        system = SpringSystem()
        for i, anchor in enumerate(anchors):
            system.pin(f"p{i}", anchor)
        system.add_free("join")
        for i in range(3):
            system.connect("join", f"p{i}")
        positions = system.relax()
        expected = weiszfeld(anchors).point
        assert np.allclose(positions["join"], expected, atol=1e-5)

    def test_weighted_springs_pull_harder(self):
        system = SpringSystem()
        system.pin("a", [0.0, 0.0])
        system.pin("b", [10.0, 0.0])
        system.add_free("op")
        system.connect("op", "a", weight=10.0)
        system.connect("op", "b", weight=1.0)
        positions = system.relax()
        assert positions["op"][0] < 1.0  # dominated by the heavy anchor

    def test_chain_of_free_bodies(self):
        """Two chained operators settle between their anchors; energy is
        no worse than placing both at either anchor."""
        system = SpringSystem()
        system.pin("src", [0.0, 0.0])
        system.pin("snk", [10.0, 0.0])
        system.add_free("op1")
        system.add_free("op2")
        system.connect("src", "op1")
        system.connect("op1", "op2")
        system.connect("op2", "snk")
        positions = system.relax()
        energy = system.energy(positions)
        assert energy <= 10.0 + 1e-6
        assert 0.0 - 1e-6 <= positions["op1"][0] <= 10.0 + 1e-6

    def test_energy_non_negative_and_decreasing_vs_bad_start(self):
        system = SpringSystem()
        system.pin("a", [0.0, 0.0])
        system.pin("b", [4.0, 0.0])
        system.add_free("x")
        system.connect("x", "a")
        system.connect("x", "b")
        bad = {"x": np.array([100.0, 100.0])}
        relaxed = system.relax(initial=bad)
        assert system.energy(relaxed) <= system.energy(bad)

    def test_free_body_without_spring_raises(self):
        system = SpringSystem()
        system.pin("a", [0.0, 0.0])
        system.add_free("dangling")
        with pytest.raises(OptimizationError):
            system.relax()

    def test_pin_and_free_conflicts(self):
        system = SpringSystem()
        system.pin("a", [0.0, 0.0])
        with pytest.raises(OptimizationError):
            system.add_free("a")
        system.add_free("b")
        with pytest.raises(OptimizationError):
            system.pin("b", [1.0, 1.0])

    def test_connect_unknown_body(self):
        system = SpringSystem()
        system.pin("a", [0.0, 0.0])
        with pytest.raises(OptimizationError):
            system.connect("a", "ghost")

    def test_no_free_bodies_returns_empty(self):
        system = SpringSystem()
        system.pin("a", [0.0, 0.0])
        assert system.relax() == {}
