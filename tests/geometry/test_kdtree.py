"""Exact k-d tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OptimizationError
from repro.geometry.kdtree import KdTree


def brute_force_knn(points, target, k):
    distances = np.linalg.norm(points - target, axis=1)
    order = np.argsort(distances, kind="stable")[:k]
    return distances[order], order


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            KdTree(np.zeros((0, 2)))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(OptimizationError):
            KdTree(np.zeros((3, 2)), leaf_size=0)

    def test_len(self):
        tree = KdTree(np.random.default_rng(0).uniform(0, 1, (25, 2)))
        assert len(tree) == 25


class TestQuery:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 100, (200, 2))
        tree = KdTree(points, leaf_size=4)
        for _ in range(20):
            target = rng.uniform(0, 100, 2)
            expected_d, _ = brute_force_knn(points, target, 5)
            actual_d, actual_i = tree.query(target, k=5)
            assert np.allclose(np.sort(actual_d), np.sort(expected_d))
            recomputed = np.linalg.norm(points[actual_i] - target, axis=1)
            assert np.allclose(np.sort(recomputed), np.sort(actual_d))

    def test_k_larger_than_n(self):
        points = np.random.default_rng(0).uniform(0, 1, (5, 2))
        tree = KdTree(points)
        distances, indices = tree.query([0.5, 0.5], k=100)
        assert len(indices) == 5

    def test_exact_hit(self):
        points = np.array([[1.0, 1.0], [5.0, 5.0]])
        tree = KdTree(points)
        distances, indices = tree.query([5.0, 5.0], k=1)
        assert indices[0] == 1
        assert distances[0] == 0.0

    def test_results_sorted_by_distance(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 10, (50, 3))
        tree = KdTree(points)
        distances, _ = tree.query(rng.uniform(0, 10, 3), k=10)
        assert (np.diff(distances) >= -1e-12).all()

    def test_invalid_query(self):
        tree = KdTree(np.zeros((3, 2)))
        with pytest.raises(OptimizationError):
            tree.query([0.0, 0.0], k=0)
        with pytest.raises(OptimizationError):
            tree.query([0.0, 0.0, 0.0], k=1)


class TestDeletions:
    def test_deleted_point_skipped(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        tree = KdTree(points)
        tree.delete(0)
        _, indices = tree.query([0.0, 0.0], k=1)
        assert indices[0] == 1
        assert len(tree) == 2

    def test_restore(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        tree = KdTree(points)
        tree.delete(0)
        tree.restore(0)
        _, indices = tree.query([0.0, 0.0], k=1)
        assert indices[0] == 0

    def test_delete_out_of_range(self):
        tree = KdTree(np.zeros((2, 2)))
        with pytest.raises(OptimizationError):
            tree.delete(5)


class TestQueryRadius:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 10, (100, 2))
        tree = KdTree(points, leaf_size=8)
        target = np.array([5.0, 5.0])
        expected = set(np.nonzero(np.linalg.norm(points - target, axis=1) <= 2.0)[0].tolist())
        actual = set(tree.query_radius(target, 2.0).tolist())
        assert actual == expected

    def test_radius_respects_deletions(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0]])
        tree = KdTree(points)
        tree.delete(1)
        assert tree.query_radius([0.0, 0.0], 1.0).tolist() == [0]


@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_kdtree_equals_brute_force(n, k, seed):
    rng = np.random.default_rng(seed)
    points = rng.uniform(-50, 50, (n, 2))
    tree = KdTree(points, leaf_size=3)
    target = rng.uniform(-50, 50, 2)
    expected_d, _ = brute_force_knn(points, target, min(k, n))
    actual_d, _ = tree.query(target, k=min(k, n))
    assert np.allclose(np.sort(actual_d), np.sort(expected_d), atol=1e-9)


class TestValueAugmentation:
    """Internal values with per-subtree bounds drive filtered queries."""

    def test_internal_values_filter_queries(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        tree = KdTree(points, values=np.array([1.0, 5.0, 10.0]))
        _, indices = tree.query([0.0, 0.0], k=1, min_value=4.0)
        assert indices[0] == 1
        _, indices = tree.query([0.0, 0.0], k=1, min_value=6.0)
        assert indices[0] == 2

    def test_set_value_updates_filtered_results(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 100, (64, 2))
        tree = KdTree(points, leaf_size=4, values=np.full(64, 1.0))
        tree.set_value(17, 99.0)
        _, indices = tree.query(points[3], k=1, min_value=50.0)
        assert indices[0] == 17
        tree.set_value(17, 0.0)
        distances, indices = tree.query(points[3], k=1, min_value=50.0)
        assert len(indices) == 0

    def test_filtered_matches_brute_force_under_mutation(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 100, (150, 2))
        values = rng.uniform(0, 100, 150)
        tree = KdTree(points, leaf_size=4, values=values)
        deleted = np.zeros(150, dtype=bool)
        for step in range(200):
            op = step % 4
            i = int(rng.integers(0, 150))
            if op == 0:
                values[i] = float(rng.uniform(0, 100))
                tree.set_value(i, values[i])
            elif op == 1 and not deleted[i]:
                deleted[i] = True
                tree.delete(i)
            elif op == 2 and deleted[i]:
                deleted[i] = False
                tree.restore(i)
            else:
                threshold = float(rng.uniform(0, 90))
                target = rng.uniform(0, 100, 2)
                eligible = np.nonzero(~deleted & (values >= threshold))[0]
                distances, indices = tree.query(target, k=3, min_value=threshold)
                expected_d = np.sort(
                    np.linalg.norm(points[eligible] - target, axis=1)
                )[:3]
                assert np.allclose(np.sort(distances), expected_d)

    def test_deleted_value_ignored_by_bounds(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        tree = KdTree(points, leaf_size=1, values=np.array([100.0, 1.0, 1.0]))
        tree.delete(0)
        distances, indices = tree.query([0.0, 0.0], k=3, min_value=50.0)
        assert len(indices) == 0
        tree.restore(0)
        _, indices = tree.query([0.0, 0.0], k=1, min_value=50.0)
        assert indices[0] == 0


class TestApproximateQuery:
    def test_returns_k_qualifying(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 100, (400, 2))
        values = rng.uniform(0, 100, 400)
        tree = KdTree(points, leaf_size=8, values=values)
        distances, indices = tree.query(
            [50.0, 50.0], k=6, min_value=30.0, approximate=True
        )
        assert len(indices) == 6
        assert all(values[i] >= 30.0 for i in indices)
        assert list(distances) == sorted(distances)

    def test_exact_when_fewer_than_k_qualify(self):
        """Approximation only skips the minimality proof; a short result
        still means the whole index was drained."""
        rng = np.random.default_rng(6)
        points = rng.uniform(0, 100, (200, 2))
        values = np.zeros(200)
        values[7] = 99.0
        values[123] = 99.0
        tree = KdTree(points, leaf_size=8, values=values)
        distances, indices = tree.query(
            [50.0, 50.0], k=5, min_value=50.0, approximate=True
        )
        assert sorted(indices.tolist()) == [7, 123]

    def test_first_result_is_true_nearest(self):
        """The bounded rank-1 proof keeps expanding while the frontier
        could beat the nearest hit, so the first result matches the exact
        nearest on typical instances (the guarantee is capped, not
        absolute, hence a fixed seed)."""
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 100, (500, 2))
        tree = KdTree(points, leaf_size=8)
        for _ in range(25):
            target = rng.uniform(0, 100, 2)
            exact_d, _ = tree.query(target, k=4)
            approx_d, _ = tree.query(target, k=4, approximate=True)
            assert approx_d[0] == pytest.approx(exact_d[0])
