"""Approximate nearest neighbours (random-projection forest)."""

import numpy as np
import pytest

from repro.common.errors import OptimizationError
from repro.geometry.annoy import AnnoyForest


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            AnnoyForest(np.zeros((0, 2)))

    def test_rejects_bad_params(self):
        points = np.zeros((5, 2))
        with pytest.raises(OptimizationError):
            AnnoyForest(points, n_trees=0)
        with pytest.raises(OptimizationError):
            AnnoyForest(points, leaf_size=0)

    def test_len(self):
        forest = AnnoyForest(np.random.default_rng(0).uniform(0, 1, (40, 2)), seed=0)
        assert len(forest) == 40


class TestQuery:
    def test_high_recall_on_clustered_data(self):
        rng = np.random.default_rng(1)
        points = np.vstack(
            [rng.normal(center, 1.0, (100, 2)) for center in [(0, 0), (50, 0), (0, 50)]]
        )
        forest = AnnoyForest(points, n_trees=10, leaf_size=16, seed=0)
        hits = 0
        trials = 30
        for _ in range(trials):
            target = points[rng.integers(0, len(points))] + rng.normal(0, 0.1, 2)
            true_d = np.sort(np.linalg.norm(points - target, axis=1))[:5]
            approx_d, _ = forest.query(target, k=5, search_k=200)
            hits += len(np.intersect1d(np.round(true_d, 6), np.round(approx_d, 6)))
        recall = hits / (trials * 5)
        assert recall > 0.8

    def test_exact_point_found(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 100, (300, 2))
        forest = AnnoyForest(points, n_trees=8, seed=0)
        distances, indices = forest.query(points[42], k=1, search_k=100)
        assert distances[0] == pytest.approx(0.0, abs=1e-9)
        assert indices[0] == 42

    def test_results_sorted(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 10, (100, 2))
        forest = AnnoyForest(points, seed=0)
        distances, _ = forest.query([5.0, 5.0], k=10)
        assert (np.diff(distances) >= -1e-12).all()

    def test_invalid_query(self):
        forest = AnnoyForest(np.zeros((3, 2)), seed=0)
        with pytest.raises(OptimizationError):
            forest.query([0.0, 0.0], k=0)
        with pytest.raises(OptimizationError):
            forest.query([0.0], k=1)

    def test_search_k_tradeoff(self):
        """Larger search_k can only improve (or tie) the nearest distance."""
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 100, (500, 2))
        forest = AnnoyForest(points, n_trees=4, leaf_size=8, seed=0)
        target = rng.uniform(0, 100, 2)
        d_small, _ = forest.query(target, k=1, search_k=4)
        d_large, _ = forest.query(target, k=1, search_k=400)
        assert d_large[0] <= d_small[0] + 1e-9


class TestDeletions:
    def test_deleted_point_skipped(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        forest = AnnoyForest(points, seed=0)
        forest.delete(0)
        _, indices = forest.query([0.0, 0.0], k=1, search_k=10)
        assert indices[0] != 0

    def test_all_deleted_returns_empty(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        forest = AnnoyForest(points, seed=0)
        forest.delete(0)
        forest.delete(1)
        distances, indices = forest.query([0.0, 0.0], k=1)
        assert len(indices) == 0

    def test_restore(self):
        points = np.array([[0.0, 0.0], [9.0, 9.0]])
        forest = AnnoyForest(points, seed=0)
        forest.delete(0)
        forest.restore(0)
        _, indices = forest.query([0.0, 0.0], k=1)
        assert indices[0] == 0

    def test_fallback_linear_scan_when_leaves_tombstoned(self):
        """Queries still return live points even when every reached leaf
        entry is deleted."""
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 1, (64, 2))
        forest = AnnoyForest(points, n_trees=1, leaf_size=4, seed=0)
        # Delete a whole corner of the space, query inside it.
        corner = np.nonzero((points[:, 0] < 0.5) & (points[:, 1] < 0.5))[0]
        for index in corner:
            forest.delete(int(index))
        distances, indices = forest.query([0.1, 0.1], k=3)
        assert len(indices) >= 1
        assert all(int(i) not in set(corner.tolist()) for i in indices)
