"""Geometric median solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OptimizationError
from repro.geometry.median import (
    gradient_descent_median,
    median_objective,
    minimax_point,
    weiszfeld,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
point_lists = st.lists(
    st.tuples(coords, coords), min_size=1, max_size=12
).map(lambda pts: np.array(pts, dtype=float))


class TestWeiszfeld:
    def test_single_point(self):
        result = weiszfeld(np.array([[3.0, 4.0]]))
        assert np.allclose(result.point, [3.0, 4.0])
        assert result.converged

    def test_two_points_midline(self):
        """Any point on the segment is optimal; objective equals distance."""
        result = weiszfeld(np.array([[0.0, 0.0], [10.0, 0.0]]))
        assert result.objective == pytest.approx(10.0, abs=1e-6)

    def test_equilateral_triangle_centroid(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        result = weiszfeld(points)
        assert np.allclose(result.point, points.mean(axis=0), atol=1e-6)

    def test_majority_anchor_dominates(self):
        """With weight > half the total at one anchor, the median IS that
        anchor (the classic Fermat-Weber dominance property)."""
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        weights = np.array([10.0, 1.0, 1.0])
        result = weiszfeld(points, weights)
        assert np.allclose(result.point, [0.0, 0.0], atol=1e-6)

    def test_collinear_points_median(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        result = weiszfeld(points)
        # 1-D geometric median of {0, 1, 10} is the middle point 1.
        assert np.allclose(result.point, [1.0, 0.0], atol=1e-4)

    def test_start_at_anchor_safeguard(self):
        """The mean of these points coincides with an anchor; the safeguard
        must still reach the optimum."""
        points = np.array([[0.0, 0.0], [4.0, 0.0], [-4.0, 0.0], [0.0, 8.0], [0.0, -8.0]])
        assert np.allclose(points.mean(axis=0), [0.0, 0.0])
        result = weiszfeld(points)
        assert np.allclose(result.point, [0.0, 0.0], atol=1e-6)

    def test_weight_validation(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(OptimizationError):
            weiszfeld(points, np.array([1.0]))
        with pytest.raises(OptimizationError):
            weiszfeld(points, np.array([-1.0, 1.0]))
        with pytest.raises(OptimizationError):
            weiszfeld(points, np.array([0.0, 0.0]))

    def test_empty_points(self):
        with pytest.raises(OptimizationError):
            weiszfeld(np.zeros((0, 2)))


class TestGradientDescent:
    def test_agrees_with_weiszfeld(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(-50, 50, (7, 2))
        a = weiszfeld(points)
        b = gradient_descent_median(points, max_iterations=2000)
        assert b.objective <= a.objective * 1.02 + 1e-6

    def test_single_point(self):
        result = gradient_descent_median(np.array([[1.0, 2.0]]))
        assert np.allclose(result.point, [1.0, 2.0])


class TestMinimax:
    def test_two_points_midpoint(self):
        result = minimax_point(np.array([[0.0, 0.0], [10.0, 0.0]]))
        assert np.allclose(result.point, [5.0, 0.0], atol=0.2)

    def test_minimax_differs_from_median_under_outlier(self):
        """The min-max center chases the outlier; the median resists it —
        the robustness argument of Section 2.3."""
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.5], [100.0, 0.0]])
        median = weiszfeld(points).point
        center = minimax_point(points).point
        assert center[0] > 20.0
        assert median[0] < 2.0

    def test_single_point(self):
        result = minimax_point(np.array([[5.0, 5.0]]))
        assert result.objective == 0.0


class TestObjective:
    def test_matches_manual_sum(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert median_objective([0.0, 0.0], points) == pytest.approx(5.0)

    def test_weighted(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert median_objective([0.0, 0.0], points, np.array([1.0, 3.0])) == pytest.approx(3.0)


@given(point_lists)
@settings(max_examples=60, deadline=None)
def test_property_weiszfeld_beats_all_anchors_and_mean(points):
    """The solver's objective is no worse than the best anchor or the mean
    (global optimality of the convex problem, up to tolerance)."""
    result = weiszfeld(points, max_iterations=400)
    candidates = [median_objective(p, points) for p in points]
    candidates.append(median_objective(points.mean(axis=0), points))
    assert result.objective <= min(candidates) + 1e-5 + 1e-6 * abs(min(candidates))


@given(point_lists)
@settings(max_examples=40, deadline=None)
def test_property_median_inside_bounding_box(points):
    """The geometric median lies within the anchors' bounding box."""
    result = weiszfeld(points, max_iterations=300)
    lo, hi = points.min(axis=0), points.max(axis=0)
    assert (result.point >= lo - 1e-6).all()
    assert (result.point <= hi + 1e-6).all()
