"""Geometric median solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OptimizationError
from repro.geometry.median import (
    gradient_descent_median,
    gradient_descent_median_batch,
    median_objective,
    median_objective_batch,
    minimax_point,
    minimax_point_batch,
    weiszfeld,
    weiszfeld_batch,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
point_lists = st.lists(
    st.tuples(coords, coords), min_size=1, max_size=12
).map(lambda pts: np.array(pts, dtype=float))


class TestWeiszfeld:
    def test_single_point(self):
        result = weiszfeld(np.array([[3.0, 4.0]]))
        assert np.allclose(result.point, [3.0, 4.0])
        assert result.converged

    def test_two_points_midline(self):
        """Any point on the segment is optimal; objective equals distance."""
        result = weiszfeld(np.array([[0.0, 0.0], [10.0, 0.0]]))
        assert result.objective == pytest.approx(10.0, abs=1e-6)

    def test_equilateral_triangle_centroid(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        result = weiszfeld(points)
        assert np.allclose(result.point, points.mean(axis=0), atol=1e-6)

    def test_majority_anchor_dominates(self):
        """With weight > half the total at one anchor, the median IS that
        anchor (the classic Fermat-Weber dominance property)."""
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        weights = np.array([10.0, 1.0, 1.0])
        result = weiszfeld(points, weights)
        assert np.allclose(result.point, [0.0, 0.0], atol=1e-6)

    def test_collinear_points_median(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        result = weiszfeld(points)
        # 1-D geometric median of {0, 1, 10} is the middle point 1.
        assert np.allclose(result.point, [1.0, 0.0], atol=1e-4)

    def test_start_at_anchor_safeguard(self):
        """The mean of these points coincides with an anchor; the safeguard
        must still reach the optimum."""
        points = np.array([[0.0, 0.0], [4.0, 0.0], [-4.0, 0.0], [0.0, 8.0], [0.0, -8.0]])
        assert np.allclose(points.mean(axis=0), [0.0, 0.0])
        result = weiszfeld(points)
        assert np.allclose(result.point, [0.0, 0.0], atol=1e-6)

    def test_weight_validation(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(OptimizationError):
            weiszfeld(points, np.array([1.0]))
        with pytest.raises(OptimizationError):
            weiszfeld(points, np.array([-1.0, 1.0]))
        with pytest.raises(OptimizationError):
            weiszfeld(points, np.array([0.0, 0.0]))

    def test_empty_points(self):
        with pytest.raises(OptimizationError):
            weiszfeld(np.zeros((0, 2)))


class TestGradientDescent:
    def test_agrees_with_weiszfeld(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(-50, 50, (7, 2))
        a = weiszfeld(points)
        b = gradient_descent_median(points, max_iterations=2000)
        assert b.objective <= a.objective * 1.02 + 1e-6

    def test_single_point(self):
        result = gradient_descent_median(np.array([[1.0, 2.0]]))
        assert np.allclose(result.point, [1.0, 2.0])


class TestMinimax:
    def test_two_points_midpoint(self):
        result = minimax_point(np.array([[0.0, 0.0], [10.0, 0.0]]))
        assert np.allclose(result.point, [5.0, 0.0], atol=0.2)

    def test_minimax_differs_from_median_under_outlier(self):
        """The min-max center chases the outlier; the median resists it —
        the robustness argument of Section 2.3."""
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.5], [100.0, 0.0]])
        median = weiszfeld(points).point
        center = minimax_point(points).point
        assert center[0] > 20.0
        assert median[0] < 2.0

    def test_single_point(self):
        result = minimax_point(np.array([[5.0, 5.0]]))
        assert result.objective == 0.0


class TestObjective:
    def test_matches_manual_sum(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert median_objective([0.0, 0.0], points) == pytest.approx(5.0)

    def test_weighted(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert median_objective([0.0, 0.0], points, np.array([1.0, 3.0])) == pytest.approx(3.0)


def pad_batch(problems, weight_lists=None):
    """Pack ragged per-problem anchor arrays into (R, A_max, d) + mask."""
    rows = len(problems)
    a_max = max(p.shape[0] for p in problems)
    dims = problems[0].shape[1]
    points = np.zeros((rows, a_max, dims))
    mask = np.zeros((rows, a_max), dtype=bool)
    weights = np.zeros((rows, a_max)) if weight_lists is not None else None
    for i, p in enumerate(problems):
        points[i, : p.shape[0]] = p
        mask[i, : p.shape[0]] = True
        if weight_lists is not None:
            weights[i, : p.shape[0]] = weight_lists[i]
    return points, weights, mask


BATCH_SOLVERS = {
    "weiszfeld": (weiszfeld, weiszfeld_batch, True),
    "gradient": (gradient_descent_median, gradient_descent_median_batch, True),
    "minimax": (minimax_point, minimax_point_batch, False),
}


def assert_batch_parity(problems, solver_name, weight_lists=None, tolerance=1e-6):
    """Batched results must match scalar per-problem solves within 1e-6.

    Point agreement is asserted where both solves converged; a problem
    that exhausts its iteration budget yields an approximation on both
    paths (knife-edge accept/reject steps may diverge in the last ulps),
    so there the batch point must merely be exactly as good — its scalar
    objective must match the reference objective within tolerance.
    """
    scalar, batch, takes_weights = BATCH_SOLVERS[solver_name]
    points, weights, mask = pad_batch(problems, weight_lists)
    if takes_weights:
        result = batch(points, weights=weights, mask=mask)
    else:
        result = batch(points, mask=mask)
    for i, anchors in enumerate(problems):
        problem_weights = None
        if takes_weights and weight_lists is not None:
            problem_weights = np.asarray(weight_lists[i], dtype=float)
            reference = scalar(anchors, problem_weights)
        else:
            reference = scalar(anchors)
        assert result.objectives[i] == pytest.approx(
            reference.objective, abs=tolerance, rel=tolerance
        ), f"{solver_name} objective mismatch on problem {i}"
        if reference.converged and result.converged[i]:
            assert np.linalg.norm(result.points[i] - reference.point) < tolerance, (
                f"{solver_name} point mismatch on problem {i}: "
                f"{result.points[i]} vs {reference.point}"
            )
        elif solver_name != "minimax":
            achieved = median_objective(result.points[i], anchors, problem_weights)
            assert achieved == pytest.approx(
                reference.objective, abs=tolerance, rel=tolerance
            ), f"{solver_name} point quality mismatch on problem {i}"


class TestBatchParity:
    """Property-style parity of the batched solvers vs the scalar ones."""

    @pytest.mark.parametrize("solver", sorted(BATCH_SOLVERS))
    @pytest.mark.parametrize("anchors", range(1, 9))
    def test_uniform_anchor_counts(self, solver, anchors):
        rng = np.random.default_rng(anchors * 101)
        problems = [rng.uniform(-80, 80, (anchors, 2)) for _ in range(25)]
        assert_batch_parity(problems, solver)

    @pytest.mark.parametrize("solver", ["weiszfeld", "gradient"])
    def test_weighted_ragged_batch(self, solver):
        rng = np.random.default_rng(7)
        problems, weight_lists = [], []
        for count in list(range(1, 9)) * 4:
            problems.append(rng.uniform(-50, 50, (count, 2)))
            weight_lists.append(rng.uniform(0.1, 5.0, count))
        assert_batch_parity(problems, solver, weight_lists)

    @pytest.mark.parametrize("solver", sorted(BATCH_SOLVERS))
    def test_coincident_anchors(self, solver):
        """Duplicated anchors exercise the at-anchor safeguard in batch."""
        rng = np.random.default_rng(11)
        problems = []
        for count in range(2, 9):
            anchors = rng.uniform(-20, 20, (count, 2))
            anchors[1] = anchors[0]  # one duplicated pair
            problems.append(anchors)
        problems.append(np.zeros((5, 2)))  # all anchors coincide
        # The 5-point star whose mean IS an anchor (safeguard start).
        problems.append(
            np.array([[0.0, 0.0], [4.0, 0.0], [-4.0, 0.0], [0.0, 8.0], [0.0, -8.0]])
        )
        assert_batch_parity(problems, solver)

    @pytest.mark.parametrize("solver", sorted(BATCH_SOLVERS))
    def test_collinear_anchors(self, solver):
        """Odd collinear sets have a unique median (the middle anchor)."""
        rng = np.random.default_rng(13)
        problems = []
        for count in (3, 5, 7):
            xs = rng.uniform(-50, 50, count)
            problems.append(np.column_stack([xs, np.zeros(count)]))
        assert_batch_parity(problems, solver)

    def test_flat_optimum_ties_stay_optimal(self):
        """Even collinear sets have a whole optimal segment; scalar and
        batch may pick different points on it, but both must be optimal."""
        rng = np.random.default_rng(17)
        problems = []
        for count in (2, 4, 6, 8):
            xs = rng.uniform(-50, 50, count)
            problems.append(np.column_stack([xs, np.zeros(count)]))
        points, _, mask = pad_batch(problems)
        result = weiszfeld_batch(points, mask=mask)
        for i, anchors in enumerate(problems):
            reference = weiszfeld(anchors)
            assert result.objectives[i] == pytest.approx(reference.objective, abs=1e-6)
            # The batch point evaluated by the scalar objective is as good.
            assert median_objective(result.points[i], anchors) == pytest.approx(
                reference.objective, abs=1e-6
            )

    def test_weighted_majority_anchor_dominates_in_batch(self):
        points = np.array([[[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]]])
        weights = np.array([[10.0, 1.0, 1.0]])
        result = weiszfeld_batch(points, weights=weights)
        assert np.allclose(result.points[0], [0.0, 0.0], atol=1e-6)

    def test_convergence_metadata_matches_scalar(self):
        rng = np.random.default_rng(19)
        problems = [rng.uniform(-30, 30, (3, 2)) for _ in range(10)]
        points, _, mask = pad_batch(problems)
        result = weiszfeld_batch(points, mask=mask)
        for i, anchors in enumerate(problems):
            reference = weiszfeld(anchors)
            assert bool(result.converged[i]) == reference.converged
            assert int(result.iterations[i]) == reference.iterations

    def test_batch_validation(self):
        with pytest.raises(OptimizationError):
            weiszfeld_batch(np.zeros((0, 3, 2)))
        with pytest.raises(OptimizationError):
            weiszfeld_batch(np.zeros((2, 3, 2)), mask=np.zeros((2, 3), dtype=bool))
        with pytest.raises(OptimizationError):
            weiszfeld_batch(np.zeros((1, 2, 2)), weights=np.array([[-1.0, 1.0]]))
        with pytest.raises(OptimizationError):
            weiszfeld_batch(np.zeros((1, 2, 2)), weights=np.array([[0.0, 0.0]]))

    def test_objective_batch_matches_scalar(self):
        rng = np.random.default_rng(23)
        problems = [rng.uniform(-10, 10, (c, 2)) for c in (1, 3, 5)]
        points, _, mask = pad_batch(problems)
        query = rng.uniform(-10, 10, (3, 2))
        batched = median_objective_batch(query, points, mask=mask)
        for i, anchors in enumerate(problems):
            assert batched[i] == pytest.approx(median_objective(query[i], anchors))


@given(point_lists)
@settings(max_examples=60, deadline=None)
def test_property_weiszfeld_beats_all_anchors_and_mean(points):
    """The solver's objective is no worse than the best anchor or the mean
    (global optimality of the convex problem, up to tolerance)."""
    result = weiszfeld(points, max_iterations=400)
    candidates = [median_objective(p, points) for p in points]
    candidates.append(median_objective(points.mean(axis=0), points))
    assert result.objective <= min(candidates) + 1e-5 + 1e-6 * abs(min(candidates))


@given(point_lists)
@settings(max_examples=40, deadline=None)
def test_property_median_inside_bounding_box(points):
    """The geometric median lies within the anchors' bounding box."""
    result = weiszfeld(points, max_iterations=300)
    lo, hi = points.min(axis=0), points.max(axis=0)
    assert (result.point >= lo - 1e-6).all()
    assert (result.point <= hi + 1e-6).all()


class TestTwoTierCompaction:
    """Tail eviction must be a pure performance change: bit-equal results."""

    @staticmethod
    def random_batch(seed, rows=64, anchors=5, dims=3):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(rows, anchors, dims)) * 10.0
        counts = rng.integers(1, anchors + 1, size=rows)
        mask = np.arange(anchors)[None, :] < counts[:, None]
        points[~mask] = 0.0
        return points, mask

    @pytest.mark.parametrize(
        "solver",
        [weiszfeld_batch, gradient_descent_median_batch, minimax_point_batch],
    )
    def test_compaction_bit_equal(self, solver):
        for seed in (0, 5, 9):
            points, mask = self.random_batch(seed)
            reference = solver(points, mask=mask, compact_after=None)
            for compact_after in (1, 2, 16):
                result = solver(points, mask=mask, compact_after=compact_after)
                assert np.array_equal(reference.points, result.points)
                assert np.array_equal(reference.objectives, result.objectives)
                assert np.array_equal(reference.iterations, result.iterations)
                assert np.array_equal(reference.converged, result.converged)

    def test_compacted_weiszfeld_still_matches_scalar(self):
        points, mask = self.random_batch(21)
        batch = weiszfeld_batch(points, mask=mask, compact_after=1)
        for row in range(points.shape[0]):
            anchors = points[row][mask[row]]
            scalar = weiszfeld(anchors)
            assert np.allclose(batch.points[row], scalar.point, atol=1e-7)
