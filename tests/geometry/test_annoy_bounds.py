"""Capacity-augmented subtree bounds on the approximate annoy backend.

Mirrors the exact k-d tree's capacity pruning: the forest keeps per-
subtree value maxima (with incremental leaf refresh on value churn), so
capacity-filtered queries skip saturated regions wholesale, exhaustion
is exact, and radius queries enumerate a neighbourhood completely.
"""

import numpy as np
import pytest

from repro.geometry.annoy import AnnoyForest
from repro.geometry.kdtree import KdTree


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(42)
    points = rng.normal(size=(600, 2)) * 25.0
    values = rng.uniform(0.0, 100.0, size=600)
    return points, values


def build_pair(dataset):
    points, values = dataset
    forest = AnnoyForest(points, n_trees=8, seed=1, values=values)
    tree = KdTree(points, values=values)
    return forest, tree


class TestFilteredRecall:
    def test_top1_matches_exact_tree(self, dataset):
        forest, tree = build_pair(dataset)
        points, _ = dataset
        rng = np.random.default_rng(7)
        matches = 0
        trials = 60
        for _ in range(trials):
            target = rng.normal(size=2) * 25.0
            threshold = float(rng.uniform(10.0, 90.0))
            exact_d, exact_i = tree.query(target, k=1, min_value=threshold)
            approx_d, approx_i = forest.query(target, k=1, min_value=threshold)
            assert len(approx_i) == 1
            if approx_i[0] == exact_i[0] or approx_d[0] == pytest.approx(exact_d[0]):
                matches += 1
        assert matches >= int(0.9 * trials)

    def test_topk_recall_with_bounds(self, dataset):
        forest, tree = build_pair(dataset)
        rng = np.random.default_rng(3)
        recalls = []
        for _ in range(30):
            target = rng.normal(size=2) * 25.0
            threshold = float(rng.uniform(20.0, 80.0))
            _, exact = tree.query(target, k=10, min_value=threshold)
            _, approx = forest.query(target, k=10, min_value=threshold)
            overlap = len(set(exact.tolist()) & set(approx.tolist()))
            recalls.append(overlap / max(len(exact), 1))
        assert np.mean(recalls) >= 0.85

    def test_exhaustion_is_exact(self, dataset):
        points, values = dataset
        forest = AnnoyForest(points, n_trees=4, seed=2, values=values)
        threshold = 99.0
        qualifying = set(np.nonzero(values >= threshold)[0].tolist())
        _, indices = forest.query(np.zeros(2), k=len(points), min_value=threshold)
        # Fewer qualifying points than k: the drained frontier must return
        # exactly the qualifying set — the spread fallback relies on this.
        assert set(indices.tolist()) == qualifying


class TestIncrementalRefresh:
    def test_value_churn_tracked(self, dataset):
        points, values = dataset
        forest = AnnoyForest(points, n_trees=4, seed=5, values=values)
        target = points[17] + 0.01
        # Saturate everything, then revive one point: only it qualifies.
        for index in range(len(points)):
            forest.set_value(index, 1.0)
        forest.set_value(33, 80.0)
        _, indices = forest.query(target, k=3, min_value=50.0)
        assert indices.tolist() == [33]
        # Raise a closer point: it must win rank 1 immediately.
        forest.set_value(17, 90.0)
        _, indices = forest.query(target, k=1, min_value=50.0)
        assert indices.tolist() == [17]

    def test_delete_restore_updates_bounds(self, dataset):
        points, values = dataset
        forest = AnnoyForest(points, n_trees=4, seed=6, values=values)
        target = points[5] + 0.02
        forest.set_value(5, 95.0)
        _, indices = forest.query(target, k=1, min_value=90.0)
        assert 5 in indices.tolist()
        forest.delete(5)
        _, indices = forest.query(target, k=1, min_value=90.0)
        assert 5 not in indices.tolist()
        forest.restore(5)
        _, indices = forest.query(target, k=1, min_value=90.0)
        assert 5 in indices.tolist()


class TestWithinRadius:
    def test_matches_exact_tree(self, dataset):
        forest, tree = build_pair(dataset)
        rng = np.random.default_rng(11)
        for _ in range(20):
            target = rng.normal(size=2) * 25.0
            radius = float(rng.uniform(5.0, 40.0))
            threshold = float(rng.uniform(0.0, 80.0))
            kd_d, kd_i = tree.within_radius(target, radius, min_value=threshold)
            an_d, an_i = forest.within_radius(target, radius, min_value=threshold)
            # Radius enumeration is exact on both backends.
            assert set(kd_i.tolist()) == set(an_i.tolist())
            assert np.allclose(np.sort(kd_d), np.sort(an_d))

    def test_annulus_is_disjoint_shell(self, dataset):
        forest, tree = build_pair(dataset)
        target = np.zeros(2)
        for backend in (forest, tree):
            full_d, full_i = backend.within_radius(target, 30.0, min_value=10.0)
            inner_d, inner_i = backend.within_radius(target, 15.0, min_value=10.0)
            shell_d, shell_i = backend.within_radius(
                target, 30.0, min_value=10.0, inner_radius=15.0
            )
            assert set(inner_i.tolist()) | set(shell_i.tolist()) == set(full_i.tolist())
            assert not set(inner_i.tolist()) & set(shell_i.tolist())
            assert all(d > 15.0 for d in shell_d)
