"""Capacity-filtered nearest-neighbour queries."""

import numpy as np
import pytest

from repro.common.errors import UnknownNodeError
from repro.geometry.annoy import AnnoyForest
from repro.geometry.kdtree import KdTree
from repro.geometry.knn import NeighborIndex


class TestKdTreeFiltered:
    def test_filter_skips_low_values(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        values = np.array([1.0, 5.0, 10.0])
        tree = KdTree(points)
        _, indices = tree.query([0.0, 0.0], k=1, values=values, min_value=4.0)
        assert indices[0] == 1
        _, indices = tree.query([0.0, 0.0], k=1, values=values, min_value=6.0)
        assert indices[0] == 2

    def test_filter_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 100, (200, 2))
        values = rng.uniform(0, 100, 200)
        tree = KdTree(points, leaf_size=4)
        for threshold in (10.0, 50.0, 90.0):
            target = rng.uniform(0, 100, 2)
            eligible = np.nonzero(values >= threshold)[0]
            distances = np.linalg.norm(points[eligible] - target, axis=1)
            expected = eligible[np.argmin(distances)]
            _, indices = tree.query(target, k=1, values=values, min_value=threshold)
            assert indices[0] == expected

    def test_no_qualifying_points(self):
        points = np.zeros((3, 2))
        values = np.array([1.0, 1.0, 1.0])
        tree = KdTree(points)
        distances, indices = tree.query([0.0, 0.0], k=2, values=values, min_value=5.0)
        assert len(indices) == 0


class TestAnnoyFiltered:
    def test_filter_falls_back_to_linear_scan(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 100, (100, 2))
        values = np.zeros(100)
        values[7] = 50.0
        forest = AnnoyForest(points, n_trees=2, leaf_size=8, seed=0)
        _, indices = forest.query([0.0, 0.0], k=1, values=values, min_value=10.0)
        assert indices[0] == 7


class TestNeighborIndexValues:
    def make(self, n=20, seed=0):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 100, (n, 2))
        ids = [f"n{i}" for i in range(n)]
        return NeighborIndex(ids, points), ids, points

    def test_default_value_is_inf(self):
        index, _, _ = self.make()
        assert index.value("n0") == float("inf")

    def test_set_value_filters_queries(self):
        index, ids, points = self.make()
        for node_id in ids:
            index.set_value(node_id, 1.0)
        index.set_value("n5", 100.0)
        results = index.query(points[0], k=1, min_value=50.0)
        assert results[0][0] == "n5"

    def test_set_value_unknown_raises(self):
        index, _, _ = self.make()
        with pytest.raises(UnknownNodeError):
            index.set_value("ghost", 1.0)

    def test_values_survive_rebuild(self):
        index, ids, points = self.make()
        for node_id in ids:
            index.set_value(node_id, 1.0)
        index.set_value("n3", 99.0)
        for i in range(10):
            index.add(f"x{i}", [float(i), float(i)])
            index.set_value(f"x{i}", 1.0)
        # Adds above force a rebuild; the filter must still find n3.
        results = index.query(points[3], k=1, min_value=50.0)
        assert results[0][0] == "n3"

    def test_extra_buffer_respects_filter(self):
        index, ids, points = self.make(5)
        index.add("rich", [0.0, 0.0])
        index.set_value("rich", 100.0)
        for node_id in ids:
            index.set_value(node_id, 1.0)
        results = index.query([0.0, 0.0], k=1, min_value=50.0)
        assert results[0][0] == "rich"


class TestAvailabilityLedger:
    def test_write_through_to_index(self):
        from repro.core.cost_space import AvailabilityLedger, CostSpace

        space = CostSpace(
            {"a": np.array([0.0, 0.0]), "b": np.array([1.0, 0.0])}
        )
        backing = {"a": 10.0, "b": 50.0}
        ledger = AvailabilityLedger(space, backing)
        assert space.knn([0.0, 0.0], k=1, min_capacity=20.0)[0][0] == "b"
        ledger["a"] = 100.0
        assert space.knn([0.0, 0.0], k=1, min_capacity=20.0)[0][0] == "a"
        # The caller's dict observes writes.
        assert backing["a"] == 100.0

    def test_mapping_protocol(self):
        from repro.core.cost_space import AvailabilityLedger, CostSpace

        space = CostSpace({"a": np.array([0.0, 0.0])})
        ledger = AvailabilityLedger(space, {"a": 1.0, "zzz": 2.0})
        assert ledger["a"] == 1.0
        assert "zzz" in ledger  # nodes outside the space are tolerated
        ledger.pop("zzz")
        assert "zzz" not in ledger
        assert len(ledger) == 1
        assert ledger.get("missing", -1.0) == -1.0
