"""The O(affected) state plane: bucketed Placement, COW journal, live views.

Covers the storage-layer contract introduced by the state-plane refactor:
the per-node/replica/join buckets are the source of truth, the flat
``sub_replicas`` list is a lazily-compacted cached view that still honours
the ObservedList append/replace contract, the change-set journal records
pre-images on first touch only (surfaced through the new PhaseTimings
counters), and rollback restores sessions bit-identically from those
pre-images — including at n=10^4 with an injected mid-batch failure.
"""

import numpy as np
import pytest

from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.core.placement import Placement, SubReplicaPlacement
from repro.core.serialization import (
    placement_from_dict,
    placement_to_dict,
    session_summary,
)
from repro.topology.dynamics import (
    BatchState,
    DataRateChangeEvent,
    RemoveNodeEvent,
)
from repro.topology.latency import CoordinateLatencyModel, DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload


def make_sub(i, node, replica=None, join="join", charged=None):
    kwargs = {"charged_capacity": charged} if charged is not None else {}
    return SubReplicaPlacement(
        sub_id=f"sub{i}",
        replica_id=replica or f"r{i % 5}",
        join_id=join,
        node_id=node,
        left_source="l",
        right_source="r",
        left_node="nl",
        right_node="nr",
        sink_node="ns",
        left_rate=float(10 + i),
        right_rate=float(20 + i),
        **kwargs,
    )


def sample_placement(count=40, nodes=8):
    placement = Placement()
    placement.extend(make_sub(i, f"n{i % nodes}") for i in range(count))
    return placement


def brute_force_views(placement):
    """Recompute every derived view from the flat list alone."""
    subs = list(placement.sub_replicas)
    by_node, by_replica, by_join, loads = {}, {}, {}, {}
    for sub in subs:
        by_node.setdefault(sub.node_id, []).append(sub)
        by_replica.setdefault(sub.replica_id, []).append(sub)
        by_join.setdefault(sub.join_id, []).append(sub)
        loads[sub.node_id] = loads.get(sub.node_id, 0.0) + sub.charged_capacity
    return {
        "by_node": by_node,
        "by_replica": by_replica,
        "by_join": by_join,
        "loads": loads,
        "total": sum(s.required_capacity for s in subs),
        "count": len(subs),
    }


def assert_parity(placement):
    """The bucket store answers identically to a flat-list recompute."""
    expected = brute_force_views(placement)
    for node_id, bucket in expected["by_node"].items():
        assert placement.subs_on_node(node_id) == bucket
    for replica_id, bucket in expected["by_replica"].items():
        assert placement.subs_of_replica(replica_id) == bucket
    for join_id, bucket in expected["by_join"].items():
        assert placement.subs_of_join(join_id) == bucket
        stats = placement.join_stats(join_id)
        assert stats["sub_joins"] == len(bucket)
        assert stats["pair_replicas"] == len({s.replica_id for s in bucket})
        assert stats["hosts"] == sorted({s.node_id for s in bucket})
    assert placement.node_loads() == pytest.approx(expected["loads"])
    assert placement.total_demand() == pytest.approx(expected["total"])
    assert placement.replica_count() == expected["count"]
    assert sorted(placement.nodes_used()) == sorted(expected["by_node"])


class TestBucketFlatParity:
    def test_parity_after_appends(self):
        assert_parity(sample_placement())

    def test_parity_after_targeted_removals(self):
        placement = sample_placement()
        placement.remove_replica("r2")
        placement.remove_subs_on_node("n3")
        placement.discard_subs([("sub0", "n0"), ("sub8", "n0")])
        assert_parity(placement)

    def test_parity_after_interleaved_churn(self):
        placement = sample_placement()
        for round_index in range(4):
            placement.remove_replica(f"r{round_index}")
            placement.extend(
                make_sub(100 + round_index * 10 + j, f"n{j}", replica="rx")
                for j in range(3)
            )
            assert_parity(placement)

    def test_parity_after_wholesale_reassignment(self):
        placement = sample_placement()
        placement.sub_replicas = [make_sub(i, f"m{i % 3}") for i in range(9)]
        assert_parity(placement)

    def test_parity_after_list_mutation_contract(self):
        """sort/setitem/del fall back to a full reindex, like ObservedList."""
        placement = sample_placement(12, nodes=3)
        placement.sub_replicas.sort(key=lambda s: s.sub_id, reverse=True)
        assert_parity(placement)
        placement.sub_replicas[0] = make_sub(99, "n9")
        assert_parity(placement)
        del placement.sub_replicas[3]
        assert_parity(placement)

    def test_serialization_round_trip_after_bucket_churn(self):
        placement = sample_placement()
        placement.remove_replica("r1")
        placement.remove_subs_on_node("n5")
        placement.pinned["op"] = "n0"
        placement.virtual_positions["r2"] = np.array([1.0, 2.0])
        data = placement_to_dict(placement)
        restored = placement_from_dict(data)
        assert list(restored.sub_replicas) == list(placement.sub_replicas)
        assert restored.pinned == dict(placement.pinned)
        assert_parity(restored)


class TestLazyFlatView:
    def test_removal_tombstones_instead_of_rewriting(self):
        placement = sample_placement(30, nodes=10)
        raw_before = len(list(placement.sub_replicas.raw()))
        placement.remove_replica("r1")
        # The physical list still holds the tombstoned entries...
        assert len(list(placement.sub_replicas.raw())) == raw_before
        assert placement.sub_replicas.dead_snapshot()
        # ...while the O(1) count and the buckets already exclude them.
        assert placement.replica_count() == 30 - 6

    def test_read_compacts_lazily(self):
        placement = sample_placement(30, nodes=10)
        placement.remove_replica("r1")
        assert len(placement.sub_replicas) == 24  # a read compacts
        assert not placement.sub_replicas.dead_snapshot()
        assert len(list(placement.sub_replicas.raw())) == 24

    def test_heavy_removal_auto_compacts(self):
        placement = sample_placement(30, nodes=3)
        placement.remove_subs_on_node("n0")
        placement.remove_subs_on_node("n1")
        # More tombstones than live entries triggers an eager compaction
        # without any intervening read.
        assert not placement.sub_replicas.dead_snapshot()

    def test_observed_contract_append_indexes_incrementally(self):
        placement = sample_placement(6, nodes=2)
        extra = make_sub(50, "n1")
        placement.sub_replicas.append(extra)
        assert extra in placement.subs_on_node("n1")
        placement.sub_replicas += [make_sub(51, "n0")]
        assert_parity(placement)

    def test_flat_equality_against_plain_list(self):
        placement = sample_placement(10, nodes=2)
        placement.remove_replica("r0")
        assert placement.sub_replicas == [
            s for s in placement.sub_replicas if True
        ]


class TestJournalCounters:
    @pytest.fixture(scope="class")
    def session(self):
        workload = synthetic_opp_workload(300, seed=11)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        return Nova(NovaConfig(seed=11)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )

    def test_single_event_batch_reports_bounded_touch_set(self, session):
        source = session.plan.sources()[0].op_id
        delta = session.apply([DataRateChangeEvent(source, 64.0)])
        touched = delta.timings.journal_nodes_touched
        copied = delta.timings.copied_subs
        assert 0 < touched < 50
        assert 0 <= copied < len(session.placement.sub_replicas)

    def test_counters_accumulate_in_session_summary(self, session):
        before = session.timings.copied_subs
        source = session.plan.sources()[1].op_id
        session.apply([DataRateChangeEvent(source, 48.0)])
        summary = session_summary(session)
        plane = summary["state_plane"]
        assert plane["journal_nodes_touched"] == session.timings.journal_nodes_touched
        assert plane["copied_subs"] == session.timings.copied_subs >= before

    def test_counters_survive_delta_round_trip(self, session):
        from repro.core.serialization import plan_delta_from_dict, plan_delta_to_dict

        source = session.plan.sources()[2].op_id
        delta = session.apply([DataRateChangeEvent(source, 32.0)])
        restored = plan_delta_from_dict(plan_delta_to_dict(delta))
        assert (
            restored.timings.journal_nodes_touched
            == delta.timings.journal_nodes_touched
        )
        assert restored.timings.copied_subs == delta.timings.copied_subs


class TestLiveViewBatchState:
    def test_of_session_copies_nothing_sized_by_topology(self):
        workload = synthetic_opp_workload(200, seed=3)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=3)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        state = BatchState.of_session(session)
        # The overlays answer through the session, not through copies.
        assert len(state.nodes) == len(session.topology)
        node = session.topology.node_ids[0]
        assert node in state.nodes
        state.nodes.discard(node)
        assert node not in state.nodes
        assert node in session.topology  # the session is untouched
        state.nodes.add(node)
        assert node in state.nodes
        # Staged deltas stay O(batch).
        assert len(state.nodes._added) == 0 and len(state.nodes._removed) == 0

    def test_live_map_overlay_semantics(self):
        workload = synthetic_opp_workload(200, seed=3)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=3)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        state = BatchState.of_session(session)
        source = session.plan.sources()[0]
        assert source.op_id in state.sources
        assert state.sources[source.op_id] == source.logical_stream
        assert state.sources.pop(source.op_id) == source.logical_stream
        assert source.op_id not in state.sources
        state.sources["fresh"] = "left"
        assert state.sources["fresh"] == "left"
        assert state.sources.pop("ghost", "dflt") == "dflt"

    def test_validation_still_mutation_free(self):
        workload = synthetic_opp_workload(150, seed=4)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=4)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        victim = session.plan.sources()[0].op_id
        nodes_before = sorted(session.topology.node_ids)
        from repro.core.changeset import ChangeSet

        ChangeSet(
            [DataRateChangeEvent(victim, 9.0), RemoveNodeEvent(victim)]
        ).validate(session)
        assert sorted(session.topology.node_ids) == nodes_before
        assert victim in session.plan


class TestObserversAcrossRollback:
    def test_overload_monitor_unchanged_after_failed_batch(self, monkeypatch):
        from repro.evaluation.overload import OverloadMonitor

        workload = synthetic_opp_workload(150, seed=8)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=8)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        monitor = OverloadMonitor(session.placement, session.topology)
        loads_before = dict(monitor._loads)
        overloaded_before = set(monitor.overloaded_node_ids)
        hosting_before = monitor.hosting_count

        host = session.placement.sub_replicas[0].node_id

        def boom(replicas):
            raise RuntimeError("injected packing failure")

        monkeypatch.setattr(session, "place_replicas", boom)
        with pytest.raises(RuntimeError):
            session.apply([RemoveNodeEvent(host)])

        # Rollback restores buckets through the observer path, so the
        # incrementally maintained monitor lands exactly where it began.
        assert dict(monitor._loads) == pytest.approx(loads_before)
        assert set(monitor.overloaded_node_ids) == overloaded_before
        assert monitor.hosting_count == hosting_before
        monitor.close()


class TestCowRollbackAtScale:
    def test_rollback_bit_identical_at_1e4(self, monkeypatch):
        """The acceptance bar: an injected mid-batch failure at n=10^4
        rolls back bit-identically through the copy-on-write journal."""
        workload = synthetic_opp_workload(10_000, seed=13)
        ids, coords = workload.topology.positions_array()
        latency = CoordinateLatencyModel(ids, coords)
        session = Nova(NovaConfig(seed=13)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )

        subs_before = [
            (s.sub_id, s.node_id, s.charged_capacity)
            for s in session.placement.sub_replicas
        ]
        pinned_before = dict(session.placement.pinned)
        available_before = dict(session.available)
        resolved_before = [r.replica_id for r in session.resolved.replicas]
        virtual_before = {
            k: v.copy() for k, v in session.placement.virtual_positions.items()
        }
        loads_before = session.placement.node_loads()
        total_before = session.placement.total_demand()

        source = session.plan.sources()[0].op_id
        host = session.placement.sub_replicas[0].node_id

        def boom(replicas):
            raise RuntimeError("injected packing failure")

        monkeypatch.setattr(session, "place_replicas", boom)
        with pytest.raises(RuntimeError):
            session.apply(
                [DataRateChangeEvent(source, 123.0), RemoveNodeEvent(host)]
            )

        assert [
            (s.sub_id, s.node_id, s.charged_capacity)
            for s in session.placement.sub_replicas
        ] == subs_before
        assert dict(session.placement.pinned) == pinned_before
        assert dict(session.available) == available_before
        assert [r.replica_id for r in session.resolved.replicas] == resolved_before
        virtual_after = session.placement.virtual_positions
        assert set(virtual_after) == set(virtual_before)
        for key, value in virtual_before.items():
            assert np.array_equal(virtual_after[key], value)
        assert session.placement.node_loads() == loads_before
        assert session.placement.total_demand() == total_before
        assert_parity_light(session.placement)


def assert_parity_light(placement):
    """Spot-check bucket/flat agreement on a large placement."""
    subs = list(placement.sub_replicas)
    assert placement.replica_count() == len(subs)
    loads = {}
    for sub in subs:
        loads[sub.node_id] = loads.get(sub.node_id, 0.0) + sub.charged_capacity
    node_loads = placement.node_loads()
    assert set(node_loads) == set(loads)
    for node_id, load in loads.items():
        assert node_loads[node_id] == pytest.approx(load)
