"""Bandwidth-aware stream partitioning (Eqs. 7-8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import (
    derive_sigma,
    max_partition_load,
    partition_rates,
    plan_partitions,
)

rates = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
sigmas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPartitionRates:
    def test_paper_example_t_stream(self):
        """dr(t)=10, p_max=3 -> [3, 3, 3, 1]."""
        assert partition_rates(10.0, 3.0) == [3.0, 3.0, 3.0, 1.0]

    def test_paper_example_s_stream_unpartitioned(self):
        """dr(s)=2 <= p_max=3 -> stays whole."""
        assert partition_rates(2.0, 3.0) == [2.0]

    def test_exact_division(self):
        assert partition_rates(9.0, 3.0) == [3.0, 3.0, 3.0]

    def test_zero_rate_single_partition(self):
        assert partition_rates(0.0, 5.0) == [0.0]

    def test_invalid_p_max(self):
        with pytest.raises(ValueError):
            partition_rates(10.0, 0.0)


class TestMaxPartitionLoad:
    def test_eq7_value(self):
        """p_max(s, t) = max(1, 0.5 * 0.5 * 12) = 3 in the worked example."""
        assert max_partition_load(2.0, 10.0, 0.5) == 3.0

    def test_floor_of_one(self):
        assert max_partition_load(0.5, 0.5, 0.1) == 1.0

    def test_sigma_zero_floors_at_one(self):
        assert max_partition_load(25.0, 25.0, 0.0) == 1.0


class TestDeriveSigma:
    def test_eq8_closed_form(self):
        """sigma* = t_b / (2 dr(s) dr(t)), projected to [0, 1]."""
        assert derive_sigma(10.0, 10.0, 100.0) == pytest.approx(0.5)

    def test_clipped_to_one(self):
        assert derive_sigma(1.0, 1.0, 1000.0) == 1.0

    def test_degenerate_rate(self):
        assert derive_sigma(0.0, 10.0, 5.0) == 1.0

    def test_minimizes_eq8_objective(self):
        """The closed form beats any sampled sigma on the Eq. 8 objective."""
        left, right, budget = 7.0, 13.0, 60.0
        best = derive_sigma(left, right, budget)

        def objective(sigma):
            return (sigma * 2.0 * left * right - budget) ** 2

        for sigma in np.linspace(0, 1, 101):
            assert objective(best) <= objective(sigma) + 1e-9


class TestPlanPartitions:
    def test_paper_worked_example(self):
        """dr(s)=2, dr(t)=10, sigma=0.5: 4 replicas, transfer 18 tuples/s,
        replica demands 5 (for t' of rate 3) and 3 (for the remainder)."""
        plan = plan_partitions(2.0, 10.0, sigma=0.5)
        assert plan.p_max == 3.0
        assert plan.left_partitions == (2.0,)
        assert plan.right_partitions == (3.0, 3.0, 3.0, 1.0)
        assert plan.replica_count == 4
        assert plan.network_transfer_rate == 18.0
        assert plan.max_replica_demand == 5.0
        assert sorted(plan.replica_demands()) == [3.0, 5.0, 5.0, 5.0]

    def test_independent_partitioning_is_worse(self):
        """The paper's comparison: independent partitioning ships 24
        tuples/s where the coupled bound ships 18."""
        coupled = plan_partitions(2.0, 10.0, sigma=0.5)
        # Independent: s -> [1,1], t -> [5,5]; transfer = 2*2 + 2*10 = 24.
        assert coupled.network_transfer_rate < 24.0

    def test_sigma_zero_max_partitioning(self):
        """sigma=0 with rates 25/25 gives the 625-replica explosion."""
        plan = plan_partitions(25.0, 25.0, sigma=0.0)
        assert plan.replica_count == 625
        assert plan.network_transfer_rate == 1250.0
        assert plan.max_replica_demand == 2.0

    def test_sigma_one_no_partitioning(self):
        plan = plan_partitions(25.0, 25.0, sigma=1.0)
        assert plan.replica_count == 1
        assert plan.network_transfer_rate == 50.0

    def test_sigma_derived_from_bandwidth(self):
        plan = plan_partitions(10.0, 10.0, sigma=None, bandwidth_threshold=100.0)
        assert plan.sigma == pytest.approx(0.5)

    def test_missing_both_controls_rejected(self):
        with pytest.raises(ValueError):
            plan_partitions(1.0, 1.0, sigma=None, bandwidth_threshold=None)


@given(rates, rates, st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=120, deadline=None)
def test_property_partitions_cover_stream_and_respect_bound(left, right, sigma):
    """Partitions sum to the stream rate and never exceed p_max."""
    plan = plan_partitions(left, right, sigma=sigma)
    assert sum(plan.left_partitions) == pytest.approx(left, abs=1e-6)
    assert sum(plan.right_partitions) == pytest.approx(right, abs=1e-6)
    for partition in plan.left_partitions + plan.right_partitions:
        assert partition <= plan.p_max + 1e-9


@given(rates, rates, st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=120, deadline=None)
def test_property_replica_demand_bounded_by_twice_pmax(left, right, sigma):
    """Each sub-join's demand is at most 2 * p_max (one partition per side)."""
    plan = plan_partitions(left, right, sigma=sigma)
    assert plan.max_replica_demand <= 2.0 * plan.p_max + 1e-9


@given(rates, rates, st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=80, deadline=None)
def test_property_transfer_grows_as_sigma_shrinks(left, right, sigma):
    """More aggressive partitioning never ships less data."""
    aggressive = plan_partitions(left, right, sigma=sigma / 2.0)
    relaxed = plan_partitions(left, right, sigma=sigma)
    assert aggressive.network_transfer_rate >= relaxed.network_transfer_rate - 1e-9
