"""Nova configuration validation."""

import pytest

from repro.core.config import (
    EMBEDDING_SMACOF,
    FALLBACK_SPREAD,
    MEDIAN_GRADIENT,
    NovaConfig,
)


class TestDefaults:
    def test_paper_defaults(self):
        config = NovaConfig()
        assert config.sigma == 0.4
        assert config.dimensions == 2
        assert config.embedding == "vivaldi"
        assert config.median_solver == "weiszfeld"

    def test_alternatives_accepted(self):
        config = NovaConfig(
            embedding=EMBEDDING_SMACOF,
            median_solver=MEDIAN_GRADIENT,
            fallback=FALLBACK_SPREAD,
            sigma=0.9,
        )
        assert config.fallback == FALLBACK_SPREAD


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimensions": 0},
            {"embedding": "umap"},
            {"median_solver": "simplex"},
            {"sigma": 1.5},
            {"sigma": -0.1},
            {"bandwidth_threshold": 0.0},
            {"min_available_capacity": -1.0},
            {"fallback": "panic"},
            {"max_candidate_expansions": -1},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            NovaConfig(**kwargs)

    def test_sigma_none_requires_bandwidth(self):
        with pytest.raises(ValueError):
            NovaConfig(sigma=None, bandwidth_threshold=None)
        config = NovaConfig(sigma=None, bandwidth_threshold=100.0)
        assert config.bandwidth_threshold == 100.0
