"""The Planner API: one registry surface for Nova and every baseline."""

import json

import numpy as np
import pytest

from repro.baselines.registry import available_baselines, make_baseline
from repro.common.errors import OptimizationError, UnsupportedEventError
from repro.core.config import NovaConfig
from repro.core.cost_space import CostSpace
from repro.core.optimizer import Nova
from repro.core.planner import (
    BaselinePlanner,
    NovaPlanner,
    PlacementPipeline,
    PlanResult,
    StrategyCapabilities,
    Workload,
    available_strategies,
    plan,
    planner,
    register_strategy,
    strategy_capabilities,
    strategy_entry,
)
from repro.topology.dynamics import DataRateChangeEvent, RemoveNodeEvent
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.running_example import build_running_example
from repro.workloads.synthetic import synthetic_opp_workload

ALL_STRATEGIES = ["nova", "sink-based", "source-based", "top-c", "tree", "cl-sf", "cl-tree-sf"]


@pytest.fixture(scope="module")
def example():
    return build_running_example()


def synthetic_bundle(n, seed):
    workload = synthetic_opp_workload(n, seed=seed)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    return workload, latency


# ----------------------------------------------------------------------
# registry round-trip
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_seven_strategies_registered_in_paper_order(self):
        assert available_strategies() == ALL_STRATEGIES

    def test_baseline_shim_sees_the_same_registry(self):
        assert available_baselines() == ALL_STRATEGIES[1:]
        for name in available_baselines():
            assert make_baseline(name).name == name

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_planner_round_trip(self, name):
        built = planner(name)
        assert built.name == name
        assert built.capabilities == strategy_capabilities(name)

    def test_capability_flags(self):
        assert strategy_capabilities("nova").supports_churn
        assert strategy_capabilities("nova").supports_partitioning
        for name in available_baselines():
            capabilities = strategy_capabilities(name)
            assert not capabilities.supports_churn
            assert not capabilities.supports_partitioning
        assert strategy_capabilities("tree").routes_via_tree
        assert strategy_capabilities("cl-tree-sf").routes_via_tree
        assert not strategy_capabilities("cl-sf").routes_via_tree

    def test_unknown_strategy_rejected_with_listing(self, example):
        with pytest.raises(OptimizationError, match="available"):
            planner("quantum")
        with pytest.raises(OptimizationError, match="quantum"):
            plan(example, "quantum")

    def test_register_strategy_extension_point(self, example):
        class EchoPlanner(NovaPlanner):
            name = "echo-nova"

        try:
            register_strategy(
                "echo-nova",
                lambda config=None: EchoPlanner(config),
                NovaPlanner.capabilities,
            )
            assert "echo-nova" in available_strategies()
            result = plan(example, "echo-nova", config=NovaConfig(seed=7))
            assert result.placement.sub_replicas
            with pytest.raises(OptimizationError, match="already registered"):
                register_strategy(
                    "echo-nova",
                    lambda config=None: EchoPlanner(config),
                    NovaPlanner.capabilities,
                )
        finally:
            from repro.core.planner import _REGISTRY

            _REGISTRY.pop("echo-nova", None)

    def test_custom_baselines_not_exposed_as_baseline(self):
        assert strategy_entry("nova").baseline_factory is None
        assert strategy_entry("tree").baseline_factory is not None

    def test_planner_submodule_not_shadowed_by_factory(self):
        """repro.core.planner must stay the module; the planner() factory
        lives at the top level and inside the module itself."""
        import importlib

        import repro
        import repro.core

        module = importlib.import_module("repro.core.planner")
        assert repro.core.planner is module
        assert repro.core.planner.Workload is Workload
        assert callable(repro.planner) and repro.planner("nova").name == "nova"


# ----------------------------------------------------------------------
# the shared workload
# ----------------------------------------------------------------------
class TestWorkload:
    def test_of_coerces_bundles_and_tuples(self, example):
        workload = Workload.of(example)
        assert workload.topology is example.topology
        assert workload.latency is example.latency
        assert workload.name == "RunningExample"

        as_tuple = Workload.of((example.topology, example.plan, example.matrix))
        assert as_tuple.latency is None

        synthetic, _ = synthetic_bundle(50, 3)
        coerced = Workload.of(synthetic)
        assert coerced.latency is None
        assert coerced.matrix is synthetic.matrix

    def test_of_applies_overrides_immutably(self, example):
        base = Workload.of(example)
        override = DenseLatencyMatrix.from_topology(example.topology)
        derived = Workload.of(base, latency=override, name="renamed")
        assert derived.latency is override
        assert derived.name == "renamed"
        assert base.latency is example.latency
        with pytest.raises(Exception):
            base.name = "mutated"  # frozen

    def test_of_rejects_garbage(self):
        with pytest.raises(OptimizationError, match="Workload"):
            Workload.of(42)

    def test_sink_accessors(self, example):
        workload = Workload.of(example)
        assert workload.sink_id == "sink"
        assert workload.sink_nodes == ["sink"]


# ----------------------------------------------------------------------
# every strategy through one surface
# ----------------------------------------------------------------------
class TestPlanAllStrategies:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_uniform_plan_result(self, example, name):
        result = plan(example, name, config=NovaConfig(seed=7))
        assert isinstance(result, PlanResult)
        assert result.strategy == name
        assert result.placement.sub_replicas, "placement must be non-empty"
        assert result.resolved.replicas
        assert result.capabilities == strategy_capabilities(name)
        assert (result.session is not None) == (name == "nova")
        summary = result.summary()
        assert summary["sub_replicas"] > 0
        json.dumps(summary)  # JSON-serializable for CLI/CI consumers
        assert result.summary_rows()
        assert result.timings.total_s >= 0.0

    def test_tree_strategies_expose_route_parents(self, example):
        for name in ("tree", "cl-tree-sf"):
            result = plan(example, name)
            assert result.route_parents, name
            distance = result.measured_distance(example.latency)
            u, v = "t1", "w2"
            assert distance(u, v) >= 0.0
        flat = plan(example, "sink-based")
        assert flat.route_parents is None


# ----------------------------------------------------------------------
# Nova-via-planner parity
# ----------------------------------------------------------------------
class TestNovaParity:
    def test_bit_identical_to_optimize_at_1e3(self):
        workload, latency = synthetic_bundle(1000, 11)
        session = Nova(NovaConfig(seed=11)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )

        workload2, latency2 = synthetic_bundle(1000, 11)
        result = plan(workload2, "nova", config=NovaConfig(seed=11), latency=latency2)

        assert result.placement.sub_replicas == session.placement.sub_replicas
        assert result.placement.pinned == session.placement.pinned
        positions = session.placement.virtual_positions
        planner_positions = result.placement.virtual_positions
        assert set(planner_positions) == set(positions)
        for replica_id, position in positions.items():
            assert np.array_equal(planner_positions[replica_id], position)
        assert result.timings.replicas_placed == session.timings.replicas_placed
        assert result.timings.medians_solved == session.timings.medians_solved
        assert result.timings.packing_passes == session.timings.packing_passes

    def test_optimize_is_a_pipeline_shim(self, example):
        session = Nova(NovaConfig(seed=7)).optimize(
            example.topology, example.plan, example.matrix, latency=example.latency
        )
        result = plan(example, "nova", config=NovaConfig(seed=7))
        assert session.placement.sub_replicas == result.placement.sub_replicas


# ----------------------------------------------------------------------
# staged pipeline: reuse and instrumentation
# ----------------------------------------------------------------------
class TestPlacementPipeline:
    def test_stage_names(self):
        assert PlacementPipeline().stage_names == [
            "cost_space",
            "resolve",
            "virtual",
            "physical",
        ]

    def test_prebuilt_cost_space_parity(self):
        workload, latency = synthetic_bundle(300, 4)
        config = NovaConfig(seed=4)
        full = plan(workload, "nova", config=config, latency=latency)

        space = CostSpace.build(latency, config)
        seeded = plan(workload, "nova", config=config, cost_space=space)
        assert seeded.placement.sub_replicas == full.placement.sub_replicas
        assert seeded.session.cost_space is space

        pipeline = PlacementPipeline(config).with_stage_result("cost_space", space)
        context = pipeline.run(Workload.of(workload, latency=latency))
        assert (
            context.session.placement.sub_replicas == full.placement.sub_replicas
        )
        # The kwarg form of Nova.optimize rides the same seam.
        session = Nova(config).optimize(
            workload.topology, workload.plan, workload.matrix, cost_space=space
        )
        assert session.placement.sub_replicas == full.placement.sub_replicas

    def test_seeded_virtual_positions_skip_phase_ii(self):
        workload, latency = synthetic_bundle(200, 9)
        config = NovaConfig(seed=9)
        reference = plan(workload, "nova", config=config, latency=latency)
        positions = dict(reference.placement.virtual_positions)

        pipeline = PlacementPipeline(config).with_stage_result("virtual", positions)
        context = pipeline.run(Workload.of(workload, latency=latency))
        assert context.timings.medians_solved == 0
        assert (
            context.session.placement.sub_replicas
            == reference.placement.sub_replicas
        )

    def test_unknown_stage_result_rejected(self):
        with pytest.raises(OptimizationError, match="unknown pipeline stage"):
            PlacementPipeline().with_stage_result("quantum", object())

    def test_with_stage_result_returns_derived_pipeline(self):
        base = PlacementPipeline()
        derived = base.with_stage_result("resolve", None)
        assert derived is not base
        assert not base._seeds and "resolve" in derived._seeds

    def test_hooks_observe_every_stage_boundary(self, example):
        before, after = [], []
        pipeline = (
            PlacementPipeline(NovaConfig(seed=7))
            .before_stage(lambda stage, ctx: before.append(stage))
            .after_stage(lambda report, ctx: after.append(report))
        )
        space = CostSpace.build(example.latency, NovaConfig(seed=7))
        pipeline = pipeline.with_stage_result("cost_space", space)
        result = plan(example, "nova", config=NovaConfig(seed=7), pipeline=pipeline)
        assert before == ["cost_space", "resolve", "virtual", "physical"]
        assert [report.stage for report in after] == before
        assert after[0].seeded and not after[1].seeded
        assert all(report.seconds >= 0.0 for report in after)
        assert result.placement.sub_replicas

    def test_custom_pipeline_only_for_nova(self, example):
        with pytest.raises(OptimizationError, match="pipeline"):
            plan(example, "sink-based", pipeline=PlacementPipeline())

    def test_explicit_config_wins_over_pipeline_config(self, example):
        config = NovaConfig(seed=5)
        result = plan(example, "nova", config=config, pipeline=PlacementPipeline())
        assert result.session.config is config
        # Without an explicit config, the pipeline's own config applies.
        pipeline_config = NovaConfig(seed=9)
        kept = plan(example, "nova", pipeline=PlacementPipeline(pipeline_config))
        assert kept.session.config is pipeline_config

    def test_workload_cost_space_reports_seeded(self, example):
        config = NovaConfig(seed=7)
        space = CostSpace.build(example.latency, config)
        reports = []
        pipeline = PlacementPipeline(config).after_stage(
            lambda report, ctx: reports.append(report)
        )
        result = plan(
            example, "nova", config=config, cost_space=space, pipeline=pipeline
        )
        assert reports[0].stage == "cost_space" and reports[0].seeded
        assert result.session.cost_space is space


class TestBaselineResolutionReuse:
    def test_planner_resolution_is_reused_by_the_strategy(self, example, monkeypatch):
        """BaselinePlanner resolves once; the strategy's internal _resolve
        must reuse that expansion rather than re-deriving it."""
        import repro.baselines.base as base_module

        def boom(plan_, matrix_):
            raise AssertionError("strategy re-resolved the plan")

        monkeypatch.setattr(base_module, "resolve_operators", boom)
        result = plan(example, "sink-based")
        assert result.placement.sub_replicas

    def test_prepared_resolution_is_identity_keyed(self, example):
        strategy = make_baseline("sink-based")
        from repro.query.expansion import resolve_operators

        resolved = resolve_operators(example.plan, example.matrix)
        strategy.prepare_resolution(example.plan, example.matrix, resolved)
        assert strategy._resolve(example.plan, example.matrix) is resolved
        # A different plan/matrix identity falls back to resolving fresh.
        other = build_running_example()
        fresh = strategy._resolve(other.plan, other.matrix)
        assert fresh is not resolved
        assert len(fresh.replicas) == len(resolved.replicas)


# ----------------------------------------------------------------------
# capability-flag enforcement
# ----------------------------------------------------------------------
class TestCapabilityEnforcement:
    @pytest.mark.parametrize("name", ALL_STRATEGIES[1:])
    def test_baselines_raise_cleanly_on_apply(self, example, name):
        result = plan(example, name)
        assert not result.supports_churn
        with pytest.raises(UnsupportedEventError) as excinfo:
            result.apply([DataRateChangeEvent("t1", 99.0)])
        assert name in str(excinfo.value)
        assert "data_rate_change" in str(excinfo.value)
        assert excinfo.value.event == "data_rate_change"  # wire-name contract
        assert excinfo.value.strategy == name
        with pytest.raises(UnsupportedEventError):
            result.transaction()
        # The placement is untouched by the refused churn.
        assert result.placement.sub_replicas

    def test_nova_result_accepts_churn(self):
        workload, latency = synthetic_bundle(80, 2)
        result = plan(workload, "nova", config=NovaConfig(seed=2), latency=latency)
        assert result.supports_churn
        source = workload.plan.sources()[0].op_id
        delta = result.apply([DataRateChangeEvent(source, 42.0)])
        assert delta.events_applied == 1
        with result.transaction() as txn:
            txn.stage(DataRateChangeEvent(source, 21.0))
        assert txn.delta is not None

    def test_nova_migrates_sink_removal_via_planner_surface(self):
        """Sink-host removal used to be a capability gap; the planner
        surface now migrates the sink to a surviving node instead."""
        workload, latency = synthetic_bundle(80, 2)
        result = plan(workload, "nova", config=NovaConfig(seed=2), latency=latency)
        session = result.session
        delta = result.apply([RemoveNodeEvent(workload.sink_id)])
        assert delta.events_applied == 1
        assert workload.sink_id not in session.topology
        sink_op = session.plan.sinks()[0]
        assert sink_op.pinned_node in session.topology
        assert all(
            replica.sink_node == sink_op.pinned_node
            for replica in session.resolved.replicas
        )
