"""Execution backends: config resolution, pool lifecycle, parity, failure."""

import os
import pickle

import pytest

from repro.core.config import NovaConfig
from repro.core import execution
from repro.core.execution import (
    ExecutionBackend,
    ProcessBackend,
    ThreadBackend,
    WorkerFailure,
    create_backend,
    resolve_workers,
)
from repro.core.packing import _pack_lease_unit
from repro.topology.dynamics import DataRateChangeEvent
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def build_session(n, seed, **overrides):
    from repro.core.optimizer import Nova

    workload = synthetic_opp_workload(n, seed=seed)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    config = NovaConfig(seed=seed, **overrides)
    session = Nova(config).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    return workload, session


def state_signature(session):
    placed = {
        (s.sub_id, s.node_id, s.charged_capacity)
        for s in session.placement.sub_replicas
    }
    return placed, dict(session.available)


class TestWorkerResolution:
    def test_auto_resolves_to_cpu_count(self):
        assert resolve_workers("auto") == (os.cpu_count() or 1)

    def test_integer_strings_convert(self):
        assert resolve_workers("4") == 4
        assert resolve_workers(3) == 3

    def test_non_numeric_string_rejected(self):
        with pytest.raises(ValueError, match="positive integer or 'auto'"):
            resolve_workers("many")

    def test_zero_and_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("-2")

    def test_config_resolves_auto(self):
        config = NovaConfig(packing_workers="auto")
        assert config.packing_workers == (os.cpu_count() or 1)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            NovaConfig(execution_backend="gpu")

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("NOVA_EXECUTION_BACKEND", "process")
        monkeypatch.setenv("NOVA_PACKING_WORKERS", "3")
        config = NovaConfig()
        assert config.execution_backend == "process"
        assert config.packing_workers == 3
        monkeypatch.setenv("NOVA_PACKING_WORKERS", "auto")
        assert NovaConfig().packing_workers == (os.cpu_count() or 1)


class TestBackendLifecycle:
    def test_create_backend_mapping(self):
        serial = create_backend(NovaConfig(execution_backend="serial"))
        assert type(serial) is ExecutionBackend and serial.name == "serial"
        thread = create_backend(
            NovaConfig(execution_backend="thread", packing_workers=2)
        )
        assert isinstance(thread, ThreadBackend) and thread.workers == 2
        process = create_backend(
            NovaConfig(execution_backend="process", packing_workers=2)
        )
        assert isinstance(process, ProcessBackend) and process.workers == 2

    def test_workers_refuse_nested_pools(self, monkeypatch):
        monkeypatch.setattr(execution, "_IN_WORKER", True)
        backend = create_backend(
            NovaConfig(execution_backend="process", packing_workers=4)
        )
        assert type(backend) is ExecutionBackend

    def test_serial_joins_are_lazy(self):
        calls = []
        joins = ExecutionBackend().start(calls.append, ["a", "b"])
        assert calls == []
        joins[1]()
        assert calls == ["b"]
        joins[0]()
        assert calls == ["b", "a"]

    def test_thread_pool_spawns_lazily_and_closes(self):
        backend = ThreadBackend(2)
        assert not backend.running
        joins = backend.start(_square, [2, 3])
        assert backend.running
        assert [join() for join in joins] == [4, 9]
        backend.close()
        assert not backend.running

    def test_process_pool_spawns_lazily_and_closes(self):
        backend = ProcessBackend(2)
        assert not backend.running
        joins = backend.start(_square, [5, 6])
        assert backend.running
        assert [join() for join in joins] == [25, 36]
        backend.close()
        assert not backend.running
        backend.close()  # idempotent

    def test_session_owns_pool_lifecycle(self):
        _, session = build_session(
            120, 3, execution_backend="thread", packing_workers=2
        )
        engine = session.engine
        backend = engine.execution
        assert isinstance(backend, ThreadBackend)
        session.close()
        assert engine._backend is None
        # Reusable after close: a new pack pass just re-creates it.
        assert isinstance(engine.execution, ThreadBackend)
        session.close()


class TestCrossBackendDeterminism:
    def test_bit_identical_across_backends_and_worker_counts(self):
        """The acceptance bar: every backend and worker count reproduces
        the serial engine's placement and ledger bit-for-bit at n=10^3."""
        _, serial = build_session(
            1000, 13, execution_backend="serial", packing_workers=1
        )
        reference = state_signature(serial)
        serial.close()
        for backend in ("serial", "thread", "process"):
            for workers in (1, 2, 4):
                _, session = build_session(
                    1000, 13, execution_backend=backend, packing_workers=workers
                )
                assert state_signature(session) == reference, (
                    f"{backend}/{workers} diverged from serial"
                )
                session.close()

    def test_serial_backend_drives_the_commit_loop(self):
        """``execution_backend="serial"`` with workers > 1 runs the full
        speculation/commit machinery with lazily-joined in-process units
        (the deterministic way to debug the commit loop), rather than
        bypassing it for the plain serial loop."""
        _, session = build_session(
            1000, 13, execution_backend="serial", packing_workers=2
        )
        stats = session.engine.stats
        assert stats.batches > 0, "serial backend never dispatched a lease unit"
        assert stats.speculated > 0, "serial backend never committed worker ops"
        session.close()


class TestWorkerFailureRollback:
    def test_mid_batch_failure_rolls_back_bit_identically(self):
        _, session = build_session(
            400,
            7,
            execution_backend="process",
            packing_workers=2,
            packing_parallel_min=1,
        )
        engine = session.engine
        before = state_signature(session)
        source = session.plan.sources()[0].op_id
        event = DataRateChangeEvent(source, 64.0)

        # Force lease units to form (the churn-time contention probe
        # would otherwise route small batches through the hot zone) and
        # poison every dispatched unit.
        engine._contended = lambda lease_nodes: False
        dispatched = []

        def poison(unit):
            dispatched.append(unit.index)
            unit.inject_failure = True

        engine._unit_hook = poison
        with pytest.raises(WorkerFailure):
            session.apply([event])
        assert dispatched, "no lease unit was ever dispatched"
        # The session journal restored the exact pre-batch state.
        assert state_signature(session) == before

        # Clear the poison: the same batch now applies cleanly.
        engine._unit_hook = None
        del engine._contended
        delta = session.apply([event])
        assert delta.events_applied == 1
        session.close()


class TestLeaseWorkUnits:
    def _capture_units(self):
        """Drive a churn re-pack with the unit hook armed and collect
        every lease unit the scheduler dispatches."""
        units = []
        _, session = build_session(
            300,
            19,
            execution_backend="thread",
            packing_workers=2,
            packing_parallel_min=1,
        )
        engine = session.engine
        engine._contended = lambda lease_nodes: False
        engine._unit_hook = units.append
        source = session.plan.sources()[0].op_id
        session.apply([DataRateChangeEvent(source, 64.0)])
        session.close()
        return units

    def test_units_pickle_small_and_round_trip(self):
        units = self._capture_units()
        assert units, "parallel pack never built a lease unit"
        for unit in units[:4]:
            blob = pickle.dumps(unit)
            # Pickle-lean: a unit ships per-bucket rows, never the
            # session (a session pickle would be megabytes at n=300).
            assert len(blob) < 256_000
            clone = pickle.loads(blob)
            assert clone.job_indices == unit.job_indices
            assert clone.snapshot == unit.snapshot
            # Bit-equal speculation on both sides of the boundary.
            ours = _pack_lease_unit(unit)
            theirs = _pack_lease_unit(clone)
            assert ours.ops == theirs.ops
            assert (ours.deferred, ours.cells) == (theirs.deferred, theirs.cells)
