"""Candidate selection (adaptive k, C_min filter)."""

import numpy as np
import pytest

from repro.core.candidates import adaptive_k, select_candidates
from repro.core.cost_space import CostSpace


def line_space(n=10):
    return CostSpace({f"n{i}": np.array([float(i), 0.0]) for i in range(n)})


class TestAdaptiveK:
    def test_scales_with_demand(self):
        assert adaptive_k(100.0, 10.0) == 10
        assert adaptive_k(5.0, 10.0) == 2  # floored at the minimum

    def test_zero_median(self):
        assert adaptive_k(100.0, 0.0) == 2

    def test_custom_minimum(self):
        assert adaptive_k(1.0, 100.0, minimum=5) == 5


class TestSelectCandidates:
    def test_nearest_first(self):
        space = line_space()
        available = {f"n{i}": 100.0 for i in range(10)}
        candidates = select_candidates(space, [0.0, 0.0], 50.0, available, k=3)
        assert [c.node_id for c in candidates] == ["n0", "n1", "n2"]
        assert candidates[0].distance <= candidates[1].distance

    def test_cmin_filters(self):
        space = line_space(5)
        available = {"n0": 5.0, "n1": 50.0, "n2": 50.0, "n3": 5.0, "n4": 50.0}
        candidates = select_candidates(
            space, [0.0, 0.0], 50.0, available, min_available=10.0, k=3
        )
        assert "n0" not in [c.node_id for c in candidates]
        assert candidates[0].node_id == "n1"

    def test_adaptive_k_used_when_not_given(self):
        space = line_space(10)
        available = {f"n{i}": 10.0 for i in range(10)}
        candidates = select_candidates(space, [0.0, 0.0], 40.0, available)
        assert len(candidates) == 4  # ceil(40 / 10)

    def test_exclude(self):
        space = line_space(4)
        available = {f"n{i}": 10.0 for i in range(4)}
        candidates = select_candidates(
            space, [0.0, 0.0], 10.0, available, k=2, exclude={"n0"}
        )
        assert "n0" not in [c.node_id for c in candidates]

    def test_available_capacity_reported(self):
        space = line_space(3)
        available = {"n0": 7.0, "n1": 8.0, "n2": 9.0}
        candidates = select_candidates(space, [0.0, 0.0], 1.0, available, k=1)
        assert candidates[0].available == 7.0
