"""Placement JSON round-trips and session summaries."""

import json

import numpy as np
import pytest

from repro.common.errors import OptimizationError
from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.core.serialization import (
    FORMAT_VERSION,
    load_placement,
    placement_from_dict,
    placement_to_dict,
    save_placement,
    session_summary,
)
from repro.workloads.running_example import build_running_example


@pytest.fixture(scope="module")
def session():
    example = build_running_example()
    return example, Nova(NovaConfig(seed=3)).optimize(
        example.topology, example.plan, example.matrix, latency=example.latency
    )


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, session):
        _, nova_session = session
        placement = nova_session.placement
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.pinned == placement.pinned
        assert restored.overload_accepted == placement.overload_accepted
        assert len(restored.sub_replicas) == len(placement.sub_replicas)
        for original, copy in zip(placement.sub_replicas, restored.sub_replicas):
            assert original == copy
        for replica_id, position in placement.virtual_positions.items():
            assert np.allclose(restored.virtual_positions[replica_id], position)

    def test_node_loads_survive(self, session):
        _, nova_session = session
        placement = nova_session.placement
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.node_loads() == placement.node_loads()

    def test_file_roundtrip(self, session, tmp_path):
        _, nova_session = session
        path = tmp_path / "placement.json"
        save_placement(nova_session.placement, path)
        restored = load_placement(path)
        assert restored.node_loads() == nova_session.placement.node_loads()

    def test_json_is_plain(self, session, tmp_path):
        _, nova_session = session
        path = tmp_path / "placement.json"
        save_placement(nova_session.placement, path)
        data = json.loads(path.read_text())
        assert data["version"] == FORMAT_VERSION
        assert isinstance(data["sub_replicas"], list)


class TestValidation:
    def test_wrong_version_rejected(self):
        with pytest.raises(OptimizationError, match="version"):
            placement_from_dict({"version": 999})

    def test_malformed_sub_rejected(self):
        with pytest.raises(OptimizationError, match="malformed"):
            placement_from_dict(
                {"version": FORMAT_VERSION, "sub_replicas": [{"bogus": 1}]}
            )

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(OptimizationError, match="invalid placement file"):
            load_placement(path)


class TestSessionSummary:
    def test_summary_contents(self, session):
        example, nova_session = session
        summary = session_summary(nova_session)
        assert summary["sigma"] == nova_session.config.sigma
        assert not summary["overload_accepted"]
        assert summary["timings_s"]["total"] > 0
        assert summary["joins"]["join"]["pair_replicas"] == 4
        hosting = {entry["node_id"] for entry in summary["nodes"]}
        assert hosting == set(nova_session.placement.nodes_used())
        for entry in summary["nodes"]:
            assert entry["utilization"] <= 1.0 + 1e-9

    def test_summary_is_json_serializable(self, session):
        _, nova_session = session
        json.dumps(session_summary(nova_session))


class TestPlanDeltaRoundTrip:
    def make_delta(self):
        from repro.core.config import NovaConfig
        from repro.core.optimizer import Nova
        from repro.topology.dynamics import DataRateChangeEvent, RemoveNodeEvent
        from repro.topology.latency import DenseLatencyMatrix
        from repro.workloads.synthetic import synthetic_opp_workload

        workload = synthetic_opp_workload(100, seed=4)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=4)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        base = session.placement.copy()
        host = session.placement.sub_replicas[0].node_id
        source = session.plan.sources()[1].op_id
        delta = session.apply(
            [RemoveNodeEvent(host), DataRateChangeEvent(source, 150.0)]
        )
        return session, base, delta

    def test_round_trip_preserves_replay(self):
        import numpy as np

        from repro.core.serialization import (
            plan_delta_from_dict,
            plan_delta_to_dict,
        )

        session, base, delta = self.make_delta()
        data = plan_delta_to_dict(delta)
        json.dumps(data)  # must be plain JSON
        rebuilt = plan_delta_from_dict(data)
        assert rebuilt.events_applied == delta.events_applied
        assert rebuilt.replicas_replaced == delta.replicas_replaced
        assert rebuilt.timings.packing_passes == delta.timings.packing_passes
        assert rebuilt.timings.knn_queries == delta.timings.knn_queries

        replayed = rebuilt.apply_to(base)
        live = {
            (s.sub_id, s.node_id, round(s.charged_capacity, 9))
            for s in session.placement.sub_replicas
        }
        folded = {
            (s.sub_id, s.node_id, round(s.charged_capacity, 9))
            for s in replayed.sub_replicas
        }
        assert live == folded
        assert set(replayed.virtual_positions) == set(
            session.placement.virtual_positions
        )
        for key, value in session.placement.virtual_positions.items():
            assert np.allclose(replayed.virtual_positions[key], value)

    def test_version_check(self):
        from repro.core.serialization import plan_delta_from_dict

        with pytest.raises(OptimizationError, match="format version"):
            plan_delta_from_dict({"version": 99})

    def test_summary_reports_packing_passes(self, session):
        _, nova_session = session
        summary = session_summary(nova_session)
        assert summary["throughput"]["packing_passes"] >= 1
