"""Section 3.6 extensions: metrics, multi-way joins, spring placement."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError, PlanError
from repro.core.config import NovaConfig
from repro.core.cost_space import CostSpace
from repro.core.extensions import (
    MetricSpec,
    build_augmented_cost_space,
    colocate_filters,
    decompose_multiway_join,
    spring_virtual_placement,
)
from repro.query.operators import Operator, OperatorKind
from repro.query.plan import LogicalPlan
from repro.topology.latency import DenseLatencyMatrix


def euclidean_matrix(n=15, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 100, (n, 2))
    return DenseLatencyMatrix.from_coordinates(
        [f"n{i}" for i in range(n)], coords, scale=scale
    )


class TestAugmentedCostSpace:
    def test_dimensions_concatenated(self):
        latency = euclidean_matrix(10, seed=1)
        energy = euclidean_matrix(10, seed=2)
        space = build_augmented_cost_space(
            latency, [MetricSpec("energy", energy, weight=1.0, dimensions=2)],
            NovaConfig(dimensions=2),
        )
        assert space.dimensions == 4

    def test_latency_only_matches_mds(self):
        latency = euclidean_matrix(12, seed=3)
        space = build_augmented_cost_space(latency, [], NovaConfig(dimensions=2))
        assert space.distance("n0", "n1") == pytest.approx(
            latency.latency("n0", "n1"), rel=1e-4
        )

    def test_augmented_distance_combines_metrics(self):
        """d_aug^2 ~ latency^2 + w * metric^2."""
        latency = euclidean_matrix(12, seed=4)
        energy = euclidean_matrix(12, seed=5)
        weight = 2.0
        space = build_augmented_cost_space(
            latency, [MetricSpec("energy", energy, weight=weight)], NovaConfig()
        )
        expected_sq = (
            latency.latency("n0", "n5") ** 2 + weight * energy.latency("n0", "n5") ** 2
        )
        # The 1-D metric embedding is a projection, so the combined
        # distance is bounded above by the exact combination.
        assert space.distance("n0", "n5") ** 2 <= expected_sq * 1.05
        assert space.distance("n0", "n5") >= latency.latency("n0", "n5") * 0.95

    def test_higher_weight_stretches_metric(self):
        latency = euclidean_matrix(12, seed=6)
        energy = euclidean_matrix(12, seed=7)
        light = build_augmented_cost_space(latency, [MetricSpec("e", energy, weight=0.1)])
        heavy = build_augmented_cost_space(latency, [MetricSpec("e", energy, weight=10.0)])
        assert heavy.distance("n0", "n3") > light.distance("n0", "n3")

    def test_mismatched_node_sets_rejected(self):
        latency = euclidean_matrix(10, seed=8)
        other = euclidean_matrix(11, seed=9)
        with pytest.raises(EmbeddingError):
            build_augmented_cost_space(latency, [MetricSpec("x", other)])

    def test_invalid_metric_spec(self):
        latency = euclidean_matrix(5)
        with pytest.raises(EmbeddingError):
            MetricSpec("x", latency, weight=0.0)
        with pytest.raises(EmbeddingError):
            MetricSpec("x", latency, dimensions=0)


def multiway_plan():
    plan = LogicalPlan()
    plan.add_source("a", node="na", rate=30.0, logical_stream="A")
    plan.add_source("b", node="nb", rate=10.0, logical_stream="B")
    plan.add_source("c", node="nc", rate=20.0, logical_stream="C")
    plan.add_sink("sink", node="nk", inputs=["placeholder"])
    return plan


class TestMultiwayDecomposition:
    def test_left_deep_chain(self):
        plan = multiway_plan()
        joins = decompose_multiway_join(
            plan, "tri", ["A", "B", "C"], "sink",
            stream_rates={"A": 30.0, "B": 10.0, "C": 20.0},
        )
        assert len(joins) == 2
        # Ascending rate order: B (10) joins C (20) first, then A.
        assert joins[0].inputs == ["B", "C"]
        assert joins[1].inputs == [joins[0].outputs[0], "A"]
        assert joins[1].outputs[0] in plan.operator("sink").inputs

    def test_chain_feeds_sink(self):
        plan = multiway_plan()
        joins = decompose_multiway_join(plan, "tri", ["A", "B", "C"], "sink")
        assert plan.sink_of_join(joins[0].op_id).op_id == "sink"

    def test_needs_two_streams(self):
        plan = multiway_plan()
        with pytest.raises(PlanError):
            decompose_multiway_join(plan, "x", ["A"], "sink")

    def test_distinct_streams_required(self):
        plan = multiway_plan()
        with pytest.raises(PlanError):
            decompose_multiway_join(plan, "x", ["A", "A"], "sink")

    def test_sink_must_be_sink(self):
        plan = multiway_plan()
        with pytest.raises(PlanError):
            decompose_multiway_join(plan, "x", ["A", "B"], "a")

    def test_missing_rates_rejected(self):
        plan = multiway_plan()
        with pytest.raises(PlanError):
            decompose_multiway_join(
                plan, "x", ["A", "B"], "sink", stream_rates={"A": 1.0}
            )


def complex_plan():
    plan = LogicalPlan()
    plan.add_source("s1", node="n0", rate=40.0, logical_stream="S1")
    plan.add_source("s2", node="n1", rate=40.0, logical_stream="S2")
    plan.add_operator(
        Operator("filt", OperatorKind.FILTER, inputs=["s1.out"], outputs=["filt.out"])
    )
    plan.add_join("join", left="S1", right="S2")
    plan.add_sink("sink", node="n2", inputs=["join.out"])
    return plan


class TestSpringPlacement:
    def space(self):
        return CostSpace(
            {
                "n0": np.array([0.0, 0.0]),
                "n1": np.array([10.0, 0.0]),
                "n2": np.array([5.0, 10.0]),
            }
        )

    def test_filters_colocate_upstream(self):
        plan = complex_plan()
        assert colocate_filters(plan) == {"filt": "s1"}

    def test_join_settles_inside_hull(self):
        plan = complex_plan()
        positions = spring_virtual_placement(plan, self.space())
        join = positions["join"]
        assert 0.0 - 1e-6 <= join[0] <= 10.0 + 1e-6
        assert 0.0 - 1e-6 <= join[1] <= 10.0 + 1e-6

    def test_filter_position_follows_carrier(self):
        plan = complex_plan()
        positions = spring_virtual_placement(plan, self.space())
        assert np.allclose(positions["filt"], self.space().position("n0"))

    def test_rate_weights_pull_toward_heavy_source(self):
        plan = LogicalPlan()
        plan.add_source("heavy", node="n0", rate=100.0, logical_stream="H")
        plan.add_source("light", node="n1", rate=1.0, logical_stream="L")
        plan.add_join("join", left="H", right="L")
        plan.add_sink("sink", node="n2", inputs=["join.out"])
        positions = spring_virtual_placement(plan, self.space(), rate_weights=True)
        heavy_pos = self.space().position("n0")
        light_pos = self.space().position("n1")
        join = positions["join"]
        assert np.linalg.norm(join - heavy_pos) < np.linalg.norm(join - light_pos)

    def test_unweighted_reduces_to_median(self):
        from repro.geometry.median import weiszfeld

        plan = LogicalPlan()
        plan.add_source("a", node="n0", rate=5.0, logical_stream="A")
        plan.add_source("b", node="n1", rate=5.0, logical_stream="B")
        plan.add_join("join", left="A", right="B")
        plan.add_sink("sink", node="n2", inputs=["join.out"])
        space = self.space()
        positions = spring_virtual_placement(plan, space, rate_weights=False)
        anchors = np.vstack([space.position(n) for n in ("n0", "n1", "n2")])
        expected = weiszfeld(anchors).point
        assert np.allclose(positions["join"], expected, atol=1e-4)
