"""Phase III: physical replica assignment."""

import numpy as np
import pytest

from repro.core.assignment import place_replica
from repro.core.config import FALLBACK_SPREAD, NovaConfig
from repro.core.cost_space import CostSpace
from repro.query.expansion import JoinPairReplica


def make_replica(left_rate=25.0, right_rate=25.0):
    return JoinPairReplica(
        replica_id="join[txw]",
        join_id="join",
        left_source="t",
        right_source="w",
        left_node="nt",
        right_node="nw",
        sink_id="sink",
        sink_node="nsink",
        left_rate=left_rate,
        right_rate=right_rate,
    )


def make_space(worker_positions):
    coords = {"nt": np.array([0.0, 0.0]), "nw": np.array([10.0, 0.0]), "nsink": np.array([5.0, 10.0])}
    for name, position in worker_positions.items():
        coords[name] = np.array(position, dtype=float)
    return CostSpace(coords)


class TestBasicPlacement:
    def test_fits_on_single_big_node(self):
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 100.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=1.0)
        )
        assert not outcome.overload_accepted
        assert {s.node_id for s in outcome.subs} == {"big"}
        assert available["big"] == pytest.approx(50.0)

    def test_partitioned_across_small_nodes(self):
        space = make_space({"w1": [5.0, 3.0], "w2": [5.5, 3.0], "w3": [6.0, 3.0], "w4": [6.5, 3.0]})
        available = {"w1": 30.0, "w2": 30.0, "w3": 30.0, "w4": 30.0,
                     "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=0.4)
        )
        assert not outcome.overload_accepted
        assert len({s.node_id for s in outcome.subs}) >= 2
        # No node exceeded its capacity.
        assert all(value >= -1e-9 for value in available.values())

    def test_charged_capacity_dedupes_shared_partitions(self):
        """All cells of a grid merged on one node charge each distinct
        partition once: total = left + right rates, not m*n demands."""
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 1000.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        replica = make_replica(50.0, 50.0)
        outcome = place_replica(
            replica, np.array([5.0, 3.0]), space, available, NovaConfig(sigma=0.2)
        )
        assert outcome.partitioning.replica_count > 1
        assert {s.node_id for s in outcome.subs} == {"big"}
        total_charged = sum(s.charged_capacity for s in outcome.subs)
        assert total_charged == pytest.approx(100.0)
        assert available["big"] == pytest.approx(900.0)

    def test_running_example_packing(self):
        """sigma=0 with rates 25/25 (625 cells) packs into two nodes of
        capacity 40 and 35 like nodes B and C of the running example."""
        space = make_space({"B": [5.0, 3.0], "C": [5.2, 3.0]})
        available = {"B": 40.0, "C": 35.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=0.0)
        )
        assert len(outcome.subs) == 625
        assert not outcome.overload_accepted
        assert all(value >= -1e-9 for value in available.values())


class TestFallbacks:
    def test_expansion_reaches_distant_capacity(self):
        positions = {f"w{i}": [float(i), 50.0] for i in range(20)}
        space = make_space(positions)
        available = {f"w{i}": 1.0 for i in range(19)}
        available["w19"] = 100.0
        available.update({"nt": 0.0, "nw": 0.0, "nsink": 0.0})
        outcome = place_replica(
            make_replica(), np.array([0.0, 50.0]), space, available,
            NovaConfig(sigma=1.0, max_candidate_expansions=8),
        )
        assert not outcome.overload_accepted
        assert outcome.subs[0].node_id == "w19"

    def test_spread_accepts_overload(self):
        space = make_space({"w1": [5.0, 3.0], "w2": [6.0, 3.0]})
        available = {"w1": 10.0, "w2": 10.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=1.0, fallback=FALLBACK_SPREAD),
        )
        assert outcome.overload_accepted
        assert len(outcome.subs) == 1

    def test_expand_then_spread_when_truly_infeasible(self):
        space = make_space({"w1": [5.0, 3.0]})
        available = {"w1": 1.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=1.0)
        )
        assert outcome.overload_accepted
        assert len(outcome.subs) == 1


class TestCMin:
    def test_nodes_below_cmin_not_used(self):
        space = make_space({"small": [5.0, 3.0], "big": [6.0, 3.0]})
        available = {"small": 55.0, "big": 60.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=1.0, min_available_capacity=58.0),
        )
        assert {s.node_id for s in outcome.subs} == {"big"}


class TestSubMetadata:
    def test_sub_ids_encode_grid_cells(self):
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 1000.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(10.0, 10.0), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=0.5),
        )
        suffixes = {s.sub_id.rsplit("/", 1)[1] for s in outcome.subs}
        assert len(suffixes) == len(outcome.subs)  # unique cells

    def test_endpoints_propagated(self):
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 100.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=1.0)
        )
        sub = outcome.subs[0]
        assert sub.left_node == "nt" and sub.right_node == "nw" and sub.sink_node == "nsink"
