"""Phase III: physical replica assignment."""

import numpy as np
import pytest

from repro.core.assignment import place_replica
from repro.core.config import FALLBACK_SPREAD, NovaConfig
from repro.core.cost_space import CostSpace
from repro.query.expansion import JoinPairReplica


def make_replica(left_rate=25.0, right_rate=25.0):
    return JoinPairReplica(
        replica_id="join[txw]",
        join_id="join",
        left_source="t",
        right_source="w",
        left_node="nt",
        right_node="nw",
        sink_id="sink",
        sink_node="nsink",
        left_rate=left_rate,
        right_rate=right_rate,
    )


def make_space(worker_positions):
    coords = {"nt": np.array([0.0, 0.0]), "nw": np.array([10.0, 0.0]), "nsink": np.array([5.0, 10.0])}
    for name, position in worker_positions.items():
        coords[name] = np.array(position, dtype=float)
    return CostSpace(coords)


class TestBasicPlacement:
    def test_fits_on_single_big_node(self):
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 100.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=1.0)
        )
        assert not outcome.overload_accepted
        assert {s.node_id for s in outcome.subs} == {"big"}
        assert available["big"] == pytest.approx(50.0)

    def test_partitioned_across_small_nodes(self):
        space = make_space({"w1": [5.0, 3.0], "w2": [5.5, 3.0], "w3": [6.0, 3.0], "w4": [6.5, 3.0]})
        available = {"w1": 30.0, "w2": 30.0, "w3": 30.0, "w4": 30.0,
                     "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=0.4)
        )
        assert not outcome.overload_accepted
        assert len({s.node_id for s in outcome.subs}) >= 2
        # No node exceeded its capacity.
        assert all(value >= -1e-9 for value in available.values())

    def test_charged_capacity_dedupes_shared_partitions(self):
        """All cells of a grid merged on one node charge each distinct
        partition once: total = left + right rates, not m*n demands."""
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 1000.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        replica = make_replica(50.0, 50.0)
        outcome = place_replica(
            replica, np.array([5.0, 3.0]), space, available, NovaConfig(sigma=0.2)
        )
        assert outcome.partitioning.replica_count > 1
        assert {s.node_id for s in outcome.subs} == {"big"}
        total_charged = sum(s.charged_capacity for s in outcome.subs)
        assert total_charged == pytest.approx(100.0)
        assert available["big"] == pytest.approx(900.0)

    def test_running_example_packing(self):
        """sigma=0 with rates 25/25 (625 cells) packs into two nodes of
        capacity 40 and 35 like nodes B and C of the running example."""
        space = make_space({"B": [5.0, 3.0], "C": [5.2, 3.0]})
        available = {"B": 40.0, "C": 35.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=0.0)
        )
        assert len(outcome.subs) == 625
        assert not outcome.overload_accepted
        assert all(value >= -1e-9 for value in available.values())


class TestFallbacks:
    def test_expansion_reaches_distant_capacity(self):
        positions = {f"w{i}": [float(i), 50.0] for i in range(20)}
        space = make_space(positions)
        available = {f"w{i}": 1.0 for i in range(19)}
        available["w19"] = 100.0
        available.update({"nt": 0.0, "nw": 0.0, "nsink": 0.0})
        outcome = place_replica(
            make_replica(), np.array([0.0, 50.0]), space, available,
            NovaConfig(sigma=1.0, max_candidate_expansions=8),
        )
        assert not outcome.overload_accepted
        assert outcome.subs[0].node_id == "w19"

    def test_spread_accepts_overload(self):
        space = make_space({"w1": [5.0, 3.0], "w2": [6.0, 3.0]})
        available = {"w1": 10.0, "w2": 10.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=1.0, fallback=FALLBACK_SPREAD),
        )
        assert outcome.overload_accepted
        assert len(outcome.subs) == 1

    def test_expand_then_spread_when_truly_infeasible(self):
        space = make_space({"w1": [5.0, 3.0]})
        available = {"w1": 1.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=1.0)
        )
        assert outcome.overload_accepted
        assert len(outcome.subs) == 1


class TestCMin:
    def test_nodes_below_cmin_not_used(self):
        space = make_space({"small": [5.0, 3.0], "big": [6.0, 3.0]})
        available = {"small": 55.0, "big": 60.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=1.0, min_available_capacity=58.0),
        )
        assert {s.node_id for s in outcome.subs} == {"big"}


class TestSpreadFallback:
    def test_overload_round_robin_charges_marginal_demand(self):
        """Spread cells merged onto a node share partition streams: the
        round-robin must charge the marginal (distinct-partition) demand,
        not the full per-cell demand."""
        space = make_space({"only": [5.0, 3.0]})
        original = {"only": 3.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        available = dict(original)
        # sigma=0 with rates 4/4 gives a 4x4 grid of unit partitions.
        outcome = place_replica(
            make_replica(4.0, 4.0), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=0.0),
        )
        assert outcome.overload_accepted
        assert len(outcome.subs) == 16
        # Full (unshared) demand would charge 2.0 per cell = 32 in total;
        # marginal accounting charges each node only its distinct
        # partitions, and the consumed availability must match.
        per_node = {}
        for sub in outcome.subs:
            per_node.setdefault(sub.node_id, []).append(sub)
        total_charged = 0.0
        for node_id, subs in per_node.items():
            lefts = {s.sub_id.rsplit("/", 1)[1].split("x")[0] for s in subs}
            rights = {s.sub_id.rsplit("/", 1)[1].split("x")[1] for s in subs}
            charged = sum(s.charged_capacity for s in subs)
            assert charged == pytest.approx(float(len(lefts) + len(rights)))
            assert original[node_id] - available[node_id] == pytest.approx(charged)
            total_charged += charged
        assert total_charged < 32.0 - 1e-6

    def test_spread_distributes_over_multiple_candidates(self):
        space = make_space({"w1": [5.0, 3.0], "w2": [5.5, 3.0]})
        available = {"w1": 2.0, "w2": 2.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(4.0, 4.0), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=0.0),
        )
        assert outcome.overload_accepted
        # Round-robin over the nearest candidates touches both workers.
        assert {"w1", "w2"} <= {s.node_id for s in outcome.subs}
        # Per-node charge equals that node's distinct partitions.
        for node_id in ("w1", "w2"):
            node_subs = [s for s in outcome.subs if s.node_id == node_id]
            lefts = {s.sub_id.rsplit("/", 1)[1].split("x")[0] for s in node_subs}
            rights = {s.sub_id.rsplit("/", 1)[1].split("x")[1] for s in node_subs}
            charged = sum(s.charged_capacity for s in node_subs)
            assert charged == pytest.approx(float(len(lefts) + len(rights)))


class TestOutcomeCounters:
    def test_cells_and_queries_reported(self):
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 1000.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(10.0, 10.0), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=0.5),
        )
        assert outcome.cells_placed == len(outcome.subs)
        # The batched cursor serves the whole grid from one fetched
        # neighbourhood: far fewer index searches than cells.
        assert 1 <= outcome.knn_queries < outcome.cells_placed


class TestSubMetadata:
    def test_sub_ids_encode_grid_cells(self):
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 1000.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(10.0, 10.0), np.array([5.0, 3.0]), space, available,
            NovaConfig(sigma=0.5),
        )
        suffixes = {s.sub_id.rsplit("/", 1)[1] for s in outcome.subs}
        assert len(suffixes) == len(outcome.subs)  # unique cells

    def test_endpoints_propagated(self):
        space = make_space({"big": [5.0, 3.0]})
        available = {"big": 100.0, "nt": 0.0, "nw": 0.0, "nsink": 0.0}
        outcome = place_replica(
            make_replica(), np.array([5.0, 3.0]), space, available, NovaConfig(sigma=1.0)
        )
        sub = outcome.subs[0]
        assert sub.left_node == "nt" and sub.right_node == "nw" and sub.sink_node == "nsink"
