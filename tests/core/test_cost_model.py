"""Cost model and constraint checks (Eqs. 2-4)."""

import pytest

from repro.core.cost_model import (
    check_bandwidth,
    check_capacity,
    check_min_availability,
    required_capacity,
)


class TestRequiredCapacity:
    def test_sum_of_input_rates(self):
        assert required_capacity([25.0, 25.0]) == 50.0

    def test_empty_is_zero(self):
        assert required_capacity([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            required_capacity([10.0, -1.0])


class TestCapacityCheck:
    def test_ok(self):
        assert check_capacity({"a": 10.0}, {"a": 10.0}) == []

    def test_violation_reported(self):
        violations = check_capacity({"a": 11.0}, {"a": 10.0})
        assert len(violations) == 1
        assert violations[0].kind == "capacity"
        assert violations[0].subject == "a"

    def test_unknown_node_counts_as_zero_capacity(self):
        assert len(check_capacity({"ghost": 1.0}, {})) == 1


class TestMinAvailability:
    def test_ok(self):
        assert check_min_availability(["a"], {"a": 20.0}, 15.0) == []

    def test_violation(self):
        violations = check_min_availability(["a"], {"a": 10.0}, 15.0)
        assert violations[0].kind == "min_availability"


class TestBandwidth:
    def test_disabled_when_threshold_none(self):
        assert check_bandwidth({"r": 1e9}, None) == []

    def test_violation(self):
        violations = check_bandwidth({"r": 50.0}, 40.0)
        assert violations[0].kind == "bandwidth"
        assert violations[0].subject == "r"

    def test_ok(self):
        assert check_bandwidth({"r": 40.0}, 40.0) == []
