"""Placement data structures."""

import pytest

from repro.core.placement import Placement, SubReplicaPlacement


def sub(sub_id="r1/0x0", replica="r1", node="n1", left=10.0, right=20.0, charged=None):
    kwargs = {}
    if charged is not None:
        kwargs["charged_capacity"] = charged
    return SubReplicaPlacement(
        sub_id=sub_id,
        replica_id=replica,
        join_id="join",
        node_id=node,
        left_source="t",
        right_source="w",
        left_node="nt",
        right_node="nw",
        sink_node="nsink",
        left_rate=left,
        right_rate=right,
        **kwargs,
    )


class TestSubReplica:
    def test_required_capacity(self):
        assert sub().required_capacity == 30.0

    def test_charged_defaults_to_required(self):
        assert sub().charged_capacity == 30.0

    def test_charged_override(self):
        assert sub(charged=5.0).charged_capacity == 5.0


class TestPlacement:
    def test_node_loads_use_charged(self):
        placement = Placement()
        placement.extend([sub(charged=30.0), sub(sub_id="r1/0x1", charged=5.0)])
        assert placement.node_loads() == {"n1": 35.0}

    def test_views(self):
        placement = Placement(pinned={"src": "n0"})
        placement.extend(
            [
                sub(),
                sub(sub_id="r2/0x0", replica="r2", node="n2"),
            ]
        )
        assert placement.node_of("src") == "n0"
        assert placement.nodes_used() == ["n1", "n2"]
        assert len(placement.subs_on_node("n1")) == 1
        assert len(placement.subs_of_replica("r2")) == 1
        assert len(placement.subs_of_join("join")) == 2
        assert placement.replica_count() == 2
        assert placement.total_demand() == 60.0
        assert placement.merge_counts() == {"n1": 1, "n2": 1}

    def test_remove_replica(self):
        placement = Placement()
        placement.extend([sub(), sub(sub_id="r1/0x1"), sub(sub_id="r2/0x0", replica="r2")])
        placement.virtual_positions["r1"] = object()
        removed = placement.remove_replica("r1")
        assert len(removed) == 2
        assert placement.replica_count() == 1
        assert "r1" not in placement.virtual_positions

    def test_remove_subs_on_node(self):
        placement = Placement()
        placement.extend([sub(node="a"), sub(sub_id="x", node="b")])
        removed = placement.remove_subs_on_node("a")
        assert len(removed) == 1
        assert placement.nodes_used() == ["b"]
