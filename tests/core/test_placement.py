"""Placement data structures."""

import pytest

from repro.core.placement import Placement, SubReplicaPlacement


def sub(sub_id="r1/0x0", replica="r1", node="n1", left=10.0, right=20.0, charged=None):
    kwargs = {}
    if charged is not None:
        kwargs["charged_capacity"] = charged
    return SubReplicaPlacement(
        sub_id=sub_id,
        replica_id=replica,
        join_id="join",
        node_id=node,
        left_source="t",
        right_source="w",
        left_node="nt",
        right_node="nw",
        sink_node="nsink",
        left_rate=left,
        right_rate=right,
        **kwargs,
    )


class TestSubReplica:
    def test_required_capacity(self):
        assert sub().required_capacity == 30.0

    def test_charged_defaults_to_required(self):
        assert sub().charged_capacity == 30.0

    def test_charged_override(self):
        assert sub(charged=5.0).charged_capacity == 5.0


class TestPlacement:
    def test_node_loads_use_charged(self):
        placement = Placement()
        placement.extend([sub(charged=30.0), sub(sub_id="r1/0x1", charged=5.0)])
        assert placement.node_loads() == {"n1": 35.0}

    def test_views(self):
        placement = Placement(pinned={"src": "n0"})
        placement.extend(
            [
                sub(),
                sub(sub_id="r2/0x0", replica="r2", node="n2"),
            ]
        )
        assert placement.node_of("src") == "n0"
        assert placement.nodes_used() == ["n1", "n2"]
        assert len(placement.subs_on_node("n1")) == 1
        assert len(placement.subs_of_replica("r2")) == 1
        assert len(placement.subs_of_join("join")) == 2
        assert placement.replica_count() == 2
        assert placement.total_demand() == 60.0
        assert placement.merge_counts() == {"n1": 1, "n2": 1}

    def test_remove_replica(self):
        placement = Placement()
        placement.extend([sub(), sub(sub_id="r1/0x1"), sub(sub_id="r2/0x0", replica="r2")])
        placement.virtual_positions["r1"] = object()
        removed = placement.remove_replica("r1")
        assert len(removed) == 2
        assert placement.replica_count() == 1
        assert "r1" not in placement.virtual_positions

    def test_remove_subs_on_node(self):
        placement = Placement()
        placement.extend([sub(node="a"), sub(sub_id="x", node="b")])
        removed = placement.remove_subs_on_node("a")
        assert len(removed) == 1
        assert placement.nodes_used() == ["b"]


def assert_indices_consistent(placement):
    """Every indexed view must equal a brute-force recomputation."""
    subs = list(placement.sub_replicas)
    assert placement.nodes_used() == sorted({s.node_id for s in subs})
    expected_loads = {}
    for s in subs:
        expected_loads[s.node_id] = expected_loads.get(s.node_id, 0.0) + s.charged_capacity
    loads = placement.node_loads()
    assert loads.keys() == expected_loads.keys()
    for node_id, load in expected_loads.items():
        assert loads[node_id] == pytest.approx(load)
    for node_id in {s.node_id for s in subs}:
        assert placement.subs_on_node(node_id) == [s for s in subs if s.node_id == node_id]
    for replica_id in {s.replica_id for s in subs}:
        assert placement.subs_of_replica(replica_id) == [
            s for s in subs if s.replica_id == replica_id
        ]
    for join_id in {s.join_id for s in subs}:
        assert placement.subs_of_join(join_id) == [s for s in subs if s.join_id == join_id]
    assert placement.merge_counts() == {
        node_id: sum(1 for s in subs if s.node_id == node_id)
        for node_id in {s.node_id for s in subs}
    }
    assert placement.subs_on_node("no-such-node") == []
    assert placement.subs_of_replica("no-such-replica") == []


class TestIndexConsistency:
    """The maintained indices must track every mutation path."""

    def test_random_mutation_sequence(self):
        import random

        rng = random.Random(29)
        placement = Placement()
        counter = 0
        for step in range(120):
            action = rng.random()
            if action < 0.6 or placement.replica_count() == 0:
                batch = [
                    sub(
                        sub_id=f"s{counter + i}",
                        replica=f"r{rng.randrange(6)}",
                        node=f"n{rng.randrange(4)}",
                        left=float(rng.randrange(1, 20)),
                        right=float(rng.randrange(1, 20)),
                    )
                    for i in range(rng.randrange(1, 4))
                ]
                counter += len(batch)
                placement.extend(batch)
            elif action < 0.8:
                placement.remove_replica(f"r{rng.randrange(6)}")
            else:
                placement.remove_subs_on_node(f"n{rng.randrange(4)}")
            assert_indices_consistent(placement)

    def test_direct_append_keeps_indices_fresh(self):
        """Baselines and serialization append to the raw list."""
        placement = Placement()
        placement.sub_replicas.append(sub())
        placement.sub_replicas.append(sub(sub_id="r1/0x1", node="n2"))
        assert placement.subs_on_node("n2")
        assert placement.node_loads() == {"n1": 30.0, "n2": 30.0}
        assert_indices_consistent(placement)

    def test_reassignment_rebuilds_indices(self):
        """tests and callers may replace the list wholesale."""
        placement = Placement()
        placement.extend([sub(), sub(sub_id="x", node="b")])
        placement.sub_replicas = [sub(sub_id="y", replica="r9", node="c")]
        assert placement.nodes_used() == ["c"]
        assert placement.subs_of_replica("r1") == []
        assert_indices_consistent(placement)

    def test_in_place_list_mutations_rebuild(self):
        placement = Placement()
        placement.extend([sub(), sub(sub_id="x", replica="r2", node="b")])
        placement.sub_replicas.pop()
        assert placement.nodes_used() == ["n1"]
        assert_indices_consistent(placement)
        placement.sub_replicas.clear()
        assert placement.nodes_used() == []
        assert placement.node_loads() == {}
        assert_indices_consistent(placement)

    def test_constructor_with_existing_subs_indexes(self):
        placement = Placement(sub_replicas=[sub(), sub(sub_id="x", node="b")])
        assert placement.nodes_used() == ["b", "n1"]
        assert_indices_consistent(placement)

    def test_remove_missing_is_noop(self):
        placement = Placement()
        placement.extend([sub()])
        assert placement.remove_replica("ghost") == []
        assert placement.remove_subs_on_node("ghost") == []
        assert_indices_consistent(placement)


class TestIncrementalAggregates:
    """total_demand and join_stats are maintained, not recomputed."""

    def build(self):
        placement = Placement()
        placement.extend(
            [
                sub(sub_id="r1/0x0", replica="r1", node="a"),
                sub(sub_id="r1/0x1", replica="r1", node="b", left=5.0, right=5.0),
                sub(sub_id="r2/0x0", replica="r2", node="a", left=1.0, right=2.0),
            ]
        )
        return placement

    def fresh_total(self, placement):
        return sum(s.required_capacity for s in placement.sub_replicas)

    def test_total_demand_tracks_adds(self):
        placement = self.build()
        assert placement.total_demand() == pytest.approx(self.fresh_total(placement))
        placement.extend([sub(sub_id="r3/0x0", replica="r3", node="c", left=7.0, right=1.0)])
        assert placement.total_demand() == pytest.approx(self.fresh_total(placement))

    def test_total_demand_tracks_removals(self):
        placement = self.build()
        placement.remove_replica("r1")
        assert placement.total_demand() == pytest.approx(self.fresh_total(placement))
        placement.remove_subs_on_node("a")
        assert placement.total_demand() == pytest.approx(self.fresh_total(placement))
        placement.remove_replica("r2")
        assert placement.total_demand() == 0.0

    def test_total_demand_survives_reassignment(self):
        placement = self.build()
        placement.sub_replicas = [sub(sub_id="x", replica="rx", node="z", left=4.0, right=4.0)]
        assert placement.total_demand() == pytest.approx(8.0)

    def test_join_stats_match_recompute(self):
        placement = self.build()

        def recompute(join_id):
            subs = placement.subs_of_join(join_id)
            return {
                "pair_replicas": len({s.replica_id for s in subs}),
                "sub_joins": len(subs),
                "hosts": sorted({s.node_id for s in subs}),
            }

        assert placement.join_stats("join") == recompute("join")
        placement.remove_replica("r1")
        assert placement.join_stats("join") == recompute("join")
        placement.remove_replica("r2")
        assert placement.join_stats("join") == recompute("join") == {
            "pair_replicas": 0,
            "sub_joins": 0,
            "hosts": [],
        }

    def test_join_stats_for_unknown_join(self):
        placement = self.build()
        assert placement.join_stats("ghost") == {
            "pair_replicas": 0,
            "sub_joins": 0,
            "hosts": [],
        }
