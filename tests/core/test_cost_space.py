"""Phase I: cost-space construction and live maintenance."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError, UnknownNodeError
from repro.core.config import (
    EMBEDDING_CLASSICAL_MDS,
    EMBEDDING_SMACOF,
    NovaConfig,
)
from repro.core.cost_space import CostSpace
from repro.topology.latency import CoordinateLatencyModel, DenseLatencyMatrix


def euclidean_matrix(n=40, seed=0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 100, (n, 2))
    return DenseLatencyMatrix.from_coordinates([f"n{i}" for i in range(n)], coords)


class TestBuild:
    def test_vivaldi_build(self):
        space = CostSpace.build(euclidean_matrix(), NovaConfig(seed=0))
        assert len(space) == 40
        assert space.dimensions == 2

    def test_classical_mds_build_is_near_exact(self):
        matrix = euclidean_matrix(25, seed=1)
        space = CostSpace.build(matrix, NovaConfig(embedding=EMBEDDING_CLASSICAL_MDS))
        assert space.distance("n0", "n1") == pytest.approx(matrix.latency("n0", "n1"), rel=1e-4)

    def test_smacof_build(self):
        matrix = euclidean_matrix(15, seed=2)
        space = CostSpace.build(matrix, NovaConfig(embedding=EMBEDDING_SMACOF))
        assert space.distance("n0", "n1") == pytest.approx(matrix.latency("n0", "n1"), rel=0.05)

    def test_mds_requires_dense_matrix(self):
        model = CoordinateLatencyModel(["a", "b"], np.array([[0.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(EmbeddingError):
            CostSpace.build(model, NovaConfig(embedding=EMBEDDING_CLASSICAL_MDS))

    def test_vivaldi_accepts_coordinate_provider(self):
        rng = np.random.default_rng(3)
        model = CoordinateLatencyModel(
            [f"n{i}" for i in range(30)], rng.uniform(0, 50, (30, 2))
        )
        space = CostSpace.build(model, NovaConfig(seed=0))
        assert len(space) == 30

    def test_empty_coordinates_rejected(self):
        with pytest.raises(EmbeddingError):
            CostSpace({})

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(EmbeddingError):
            CostSpace({"a": np.zeros(2), "b": np.zeros(3)})


class TestQueries:
    def test_distance_symmetry(self):
        space = CostSpace.build(euclidean_matrix(20), NovaConfig(seed=0))
        assert space.distance("n1", "n2") == pytest.approx(space.distance("n2", "n1"))

    def test_knn_returns_nearest(self):
        space = CostSpace({"a": np.array([0.0, 0.0]), "b": np.array([10.0, 0.0])})
        results = space.knn([1.0, 0.0], k=1)
        assert results[0][0] == "a"

    def test_distance_to_point(self):
        space = CostSpace({"a": np.array([0.0, 0.0])})
        assert space.distance_to_point("a", [3.0, 4.0]) == pytest.approx(5.0)

    def test_as_matrix(self):
        space = CostSpace({"a": np.array([0.0, 1.0]), "b": np.array([2.0, 3.0])})
        ids, coords = space.as_matrix()
        assert ids == ["a", "b"]
        assert coords.shape == (2, 2)


class TestLiveMaintenance:
    def test_add_node_lands_near_neighbors(self):
        matrix = euclidean_matrix(50, seed=4)
        space = CostSpace.build(matrix, NovaConfig(seed=0))
        # New node with the same latencies as n0 should land near n0.
        neighbor_latencies = {
            f"n{i}": matrix.latency("n0", f"n{i}") for i in range(1, 20)
        }
        position = space.add_node("newcomer", neighbor_latencies)
        assert "newcomer" in space
        assert np.linalg.norm(position - space.position("n0")) < 40.0

    def test_add_existing_rejected(self):
        space = CostSpace({"a": np.zeros(2), "b": np.ones(2)})
        with pytest.raises(EmbeddingError):
            space.add_node("a", {"b": 1.0})

    def test_add_without_known_neighbors_rejected(self):
        space = CostSpace({"a": np.zeros(2)})
        with pytest.raises(EmbeddingError):
            space.add_node("x", {"ghost": 5.0})
        with pytest.raises(EmbeddingError):
            space.add_node("x", {})

    def test_remove_node(self):
        space = CostSpace({"a": np.zeros(2), "b": np.ones(2)})
        space.remove_node("a")
        assert "a" not in space
        assert len(space) == 1
        with pytest.raises(UnknownNodeError):
            space.remove_node("a")

    def test_update_node_moves_coordinates(self):
        space = CostSpace(
            {"a": np.array([0.0, 0.0]), "b": np.array([10.0, 0.0]), "c": np.array([0.0, 10.0])}
        )
        before = space.position("c").copy()
        space.update_node("c", {"a": 1.0, "b": 1.0})
        after = space.position("c")
        assert not np.allclose(before, after)

    def test_knn_skips_removed(self):
        space = CostSpace({"a": np.zeros(2), "b": np.array([1.0, 0.0]), "c": np.array([5.0, 0.0])})
        space.remove_node("a")
        results = space.knn([0.0, 0.0], k=1)
        assert results[0][0] == "b"


class TestNeighborhoodCursor:
    def make_space(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        coords = {f"n{i}": rng.uniform(0, 100, 2) for i in range(n)}
        return CostSpace(coords), coords

    def test_streams_nearest_first(self):
        space, coords = self.make_space()
        available = {nid: 10.0 for nid in coords}
        cursor = space.neighborhood([50.0, 50.0], threshold=5.0)
        first = cursor.next_host(available)
        expected = min(
            coords, key=lambda nid: float(np.linalg.norm(coords[nid] - [50.0, 50.0]))
        )
        assert first == expected

    def test_reuses_host_until_capacity_consumed(self):
        space, coords = self.make_space()
        available = {nid: 0.0 for nid in coords}
        available["n3"] = 10.0
        available["n7"] = 10.0
        cursor = space.neighborhood([50.0, 50.0], threshold=5.0)
        first = cursor.next_host(available)
        assert first in ("n3", "n7")
        # Still above threshold: the cached batch answers without a new
        # index search, returning the same host.
        queries_before = cursor.queries
        assert cursor.next_host(available) == first
        assert cursor.queries == queries_before
        # Consume it; the cursor moves on and never returns to it.
        available[first] = 1.0
        second = cursor.next_host(available)
        assert second in ("n3", "n7") and second != first

    def test_goes_dry_and_stays_dry(self):
        space, coords = self.make_space(n=6)
        available = {nid: 1.0 for nid in coords}
        cursor = space.neighborhood([50.0, 50.0], threshold=5.0)
        assert cursor.next_host(available) is None
        # Dryness is remembered: no further index searches are issued.
        queries = cursor.queries
        assert cursor.next_host(available) is None
        assert cursor.queries == queries

    def test_batches_amortize_queries(self):
        space, coords = self.make_space(n=60)
        available = {nid: 10.0 for nid in coords}
        cursor = space.neighborhood([50.0, 50.0], threshold=5.0)
        hosts = []
        for _ in range(12):
            host = cursor.next_host(available)
            assert host is not None
            available[host] = 0.0  # exhaust it so the next call advances
            hosts.append(host)
        assert len(set(hosts)) == 12
        # 12 hosts served by a handful of doubling fetches, not 12 queries.
        assert cursor.queries <= 4

    def test_live_availability_consulted(self):
        """Capacity consumed after the batch was fetched must be seen."""
        space, coords = self.make_space()
        available = {nid: 10.0 for nid in coords}
        cursor = space.neighborhood([50.0, 50.0], threshold=5.0)
        first = cursor.next_host(available)
        # Drain the first host *without* telling the index (plain dict
        # write): the cursor must still skip it on the next request.
        available = dict(available)
        available[first] = 0.0
        assert cursor.next_host(available) != first


class TestMutationEpoch:
    def make_space(self, n=20):
        coords = {f"n{i}": np.array([float(i), 0.0]) for i in range(n)}
        return CostSpace(coords)

    def test_decreases_do_not_bump(self):
        space = self.make_space()
        space.set_available("n0", 50.0)
        epoch = space.mutation_epoch
        space.set_available("n0", 10.0)
        space.set_available("n0", 0.0)
        assert space.mutation_epoch == epoch

    def test_increase_bumps(self):
        space = self.make_space()
        space.set_available("n0", 10.0)
        epoch = space.mutation_epoch
        space.set_available("n0", 20.0)
        assert space.mutation_epoch == epoch + 1

    def test_node_churn_bumps(self):
        space = self.make_space()
        epoch = space.mutation_epoch
        space.remove_node("n3")
        assert space.mutation_epoch > epoch
        epoch = space.mutation_epoch
        space.add_node("fresh", {"n0": 5.0, "n1": 7.0})
        assert space.mutation_epoch > epoch


class TestVectorizedGathers:
    def make_space(self, n=30):
        coords = {f"n{i}": np.array([float(i), float(i % 7)]) for i in range(n)}
        return CostSpace(coords), coords

    def test_positions_batch_matches_position(self):
        space, coords = self.make_space()
        ids = ["n3", "n17", "n3", "n29"]
        batch = space.positions_batch(ids)
        assert batch.shape == (4, 2)
        for row, node_id in enumerate(ids):
            assert np.allclose(batch[row], space.position(node_id))

    def test_positions_batch_after_churn(self):
        space, _ = self.make_space()
        space.remove_node("n5")
        space.add_node("extra", {"n0": 4.0, "n1": 6.0})
        batch = space.positions_batch(["n3", "extra"])
        assert np.allclose(batch[0], space.position("n3"))
        assert np.allclose(batch[1], space.position("extra"))
        with pytest.raises(UnknownNodeError):
            space.positions_batch(["n3", "n5"])

    def test_anchor_matrix_padded_and_masked(self):
        space, _ = self.make_space()
        groups = [["n1", "n2", "n3"], ["n4"], ["n5", "n6"]]
        anchors, mask = space.anchor_matrix(groups)
        assert anchors.shape == (3, 3, 2)
        assert mask.shape == (3, 3)
        assert mask.sum() == 6
        for row, group in enumerate(groups):
            for slot, node_id in enumerate(group):
                assert np.allclose(anchors[row, slot], space.position(node_id))

    def test_anchor_matrix_uniform_groups_have_no_mask(self):
        space, _ = self.make_space()
        anchors, mask = space.anchor_matrix([["n1", "n2"], ["n3", "n4"]])
        assert mask is None
        assert anchors.shape == (2, 2, 2)

    def test_within_matches_knn(self):
        space, coords = self.make_space()
        for node_id in coords:
            space.set_available(node_id, 10.0)
        space.set_available("n2", 1.0)
        point = [3.0, 3.0]
        ring = space.within(point, radius=6.0, min_capacity=5.0)
        assert ring == sorted(ring, key=lambda pair: pair[1])
        ring_ids = {node_id for node_id, _ in ring}
        assert "n2" not in ring_ids
        for node_id, dist in space.knn(point, k=len(coords), min_capacity=5.0):
            if dist <= 6.0:
                assert node_id in ring_ids
