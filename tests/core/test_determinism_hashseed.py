"""Cross-run determinism under hash randomization.

Regression for the set-iteration fixes in ``placement.py`` and
``changeset.py`` (``remove_node``/``change_capacity``/
``update_coordinates``): the affected-replica unions were iterated in
set order, which is ``PYTHONHASHSEED``-dependent — so undeploy order,
ledger float-accumulation order, and packing order could differ between
two runs of the *same* scenario. The fix iterates ``sorted(...)``.

The test replays one churn scenario in subprocesses pinned to different
hash seeds and requires bit-identical placement fingerprints, raw
iteration order included.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_SCENARIO = """
import json

from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.topology.dynamics import (
    CapacityChangeEvent,
    CoordinateDriftEvent,
    RemoveNodeEvent,
)
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload

workload = synthetic_opp_workload(60, seed=5)
latency = DenseLatencyMatrix.from_topology(workload.topology)
session = Nova(NovaConfig(seed=5)).optimize(
    workload.topology, workload.plan, workload.matrix, latency=latency
)

pinned_hosts = {op.pinned_node for op in session.plan.sinks()}
pinned_hosts |= {op.pinned_node for op in session.plan.sources()}
free = [n for n in session.topology.node_ids if n not in pinned_hosts]
victim, squeezed, anchor = free[0], free[1], free[2]

neighbors = {
    nid: latency.latency(anchor, nid) + 1.0
    for nid in session.topology.node_ids[:10]
    if nid != anchor
}
session.apply([RemoveNodeEvent(victim)])
session.apply([CapacityChangeEvent(squeezed, 0.5)])
session.apply([CoordinateDriftEvent(anchor, neighbors)])

fingerprint = {
    "subs": [
        [s.sub_id, s.node_id, repr(s.charged_capacity)]
        for s in session.placement.sub_replicas
    ],
    "pinned": list(session.placement.pinned.items()),
    "available": [[k, repr(v)] for k, v in session.available.items()],
    "replicas": [r.replica_id for r in session.resolved.replicas],
}
print(json.dumps(fingerprint))
"""


def _run(hashseed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", _SCENARIO],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PYTHONHASHSEED": hashseed,
            "PATH": "/usr/bin:/bin",
        },
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_churn_replay_is_hashseed_invariant():
    outputs = {seed: _run(seed) for seed in ("0", "1", "4242")}
    baseline = outputs["0"]
    assert json.loads(baseline)["subs"], "scenario produced no placement"
    for seed, output in outputs.items():
        assert output == baseline, (
            f"placement fingerprint diverged under PYTHONHASHSEED={seed}"
        )
