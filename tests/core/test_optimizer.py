"""The Nova optimizer end to end (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import (
    MEDIAN_GRADIENT,
    MEDIAN_MINIMAX,
    NovaConfig,
)
from repro.core.optimizer import Nova
from repro.evaluation.overload import overload_percentage
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.running_example import build_running_example
from repro.workloads.synthetic import synthetic_opp_workload


@pytest.fixture(scope="module")
def example():
    return build_running_example()


@pytest.fixture(scope="module")
def example_session(example):
    return Nova(NovaConfig(seed=3)).optimize(
        example.topology, example.plan, example.matrix, latency=example.latency
    )


class TestRunningExample:
    def test_one_replica_per_join_pair(self, example, example_session):
        replica_ids = {s.replica_id for s in example_session.placement.sub_replicas}
        assert len(replica_ids) == example.matrix.num_pairs() == 4

    def test_no_overload(self, example, example_session):
        assert overload_percentage(example_session.placement, example.topology) == 0.0
        assert not example_session.placement.overload_accepted

    def test_pinned_operators_stay_pinned(self, example, example_session):
        placement = example_session.placement
        assert placement.pinned["t1"] == "t1"
        assert placement.pinned["sink_op"] == "sink"

    def test_capacity_respected_on_every_node(self, example, example_session):
        loads = example_session.placement.node_loads()
        for node_id, load in loads.items():
            assert load <= example.topology.node(node_id).capacity + 1e-9

    def test_virtual_positions_recorded(self, example_session):
        placement = example_session.placement
        assert len(placement.virtual_positions) == 4
        for position in placement.virtual_positions.values():
            assert position.shape == (2,)

    def test_timings_populated(self, example_session):
        timings = example_session.timings
        assert timings.total_s > 0
        assert timings.cost_space_s >= 0

    def test_sources_never_host_more_than_available(self, example, example_session):
        """Source nodes lose ingestion capacity before Phase III."""
        loads = example_session.placement.node_loads()
        for source in example.plan.sources():
            node = example.topology.node(source.pinned_node)
            hosted = loads.get(source.pinned_node, 0.0)
            headroom = max(node.capacity - source.data_rate, 0.0)
            assert hosted <= headroom + 1e-9


class TestMedianSolvers:
    @pytest.mark.parametrize("solver", [MEDIAN_GRADIENT, MEDIAN_MINIMAX])
    def test_alternative_solvers_produce_valid_placements(self, example, solver):
        session = Nova(NovaConfig(seed=3, median_solver=solver)).optimize(
            example.topology, example.plan, example.matrix, latency=example.latency
        )
        assert session.placement.replica_count() >= 4


class TestBatchedVirtualPlacement:
    @pytest.mark.parametrize(
        "solver", [NovaConfig().median_solver, MEDIAN_GRADIENT, MEDIAN_MINIMAX]
    )
    def test_batched_positions_match_scalar_path(self, solver):
        """The batched Phase II engine and the per-replica scalar path
        (median_batch_size=0) must agree on every virtual position."""
        workload = synthetic_opp_workload(120, seed=21)
        latency = DenseLatencyMatrix.from_topology(workload.topology)

        def run(**overrides):
            return Nova(
                NovaConfig(seed=21, median_solver=solver, median_batch_min=1, **overrides)
            ).optimize(workload.topology, workload.plan, workload.matrix, latency=latency)

        batched = run().placement.virtual_positions
        scalar = run(median_batch_size=0).placement.virtual_positions
        assert batched.keys() == scalar.keys()
        for replica_id, position in batched.items():
            assert np.linalg.norm(position - scalar[replica_id]) < 1e-6, replica_id

    def test_small_chunks_cover_all_replicas(self):
        """Chunked batching (batch size smaller than the replica count)
        still solves every median exactly once."""
        workload = synthetic_opp_workload(100, seed=8)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(
            NovaConfig(seed=8, median_batch_size=3, median_batch_min=1)
        ).optimize(workload.topology, workload.plan, workload.matrix, latency=latency)
        assert session.timings.medians_solved == workload.matrix.num_pairs()
        assert len(session.placement.virtual_positions) == workload.matrix.num_pairs()


class TestSyntheticWorkload:
    def test_zero_overload_at_default_capacity(self):
        workload = synthetic_opp_workload(200, seed=7)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=7)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        assert overload_percentage(session.placement, workload.topology) == 0.0

    def test_every_pair_covered_exactly_by_grid(self):
        workload = synthetic_opp_workload(100, seed=3)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=3)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        placed_pairs = {s.replica_id for s in session.placement.sub_replicas}
        assert len(placed_pairs) == workload.matrix.num_pairs()
        # Grid cells of each replica are unique.
        seen = set()
        for sub in session.placement.sub_replicas:
            assert sub.sub_id not in seen
            seen.add(sub.sub_id)

    def test_prebuilt_cost_space_reused(self):
        from repro.core.cost_space import CostSpace

        workload = synthetic_opp_workload(80, seed=1)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        config = NovaConfig(seed=1)
        space = CostSpace.build(latency, config)
        session = Nova(config).optimize(
            workload.topology, workload.plan, workload.matrix, cost_space=space
        )
        assert session.cost_space is space
        assert session.timings.cost_space_s < 0.05

    def test_available_ledger_consistent_with_loads(self):
        workload = synthetic_opp_workload(120, seed=9)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=9)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        loads = session.placement.node_loads()
        ingestion = {
            op.pinned_node: op.data_rate for op in workload.plan.sources()
        }
        for node in workload.topology.nodes():
            after_ingestion = max(node.capacity - ingestion.get(node.node_id, 0.0), 0.0)
            expected = after_ingestion - loads.get(node.node_id, 0.0)
            assert session.available[node.node_id] == pytest.approx(expected, abs=1e-6)


class TestOverloadPropagation:
    def test_overload_accepted_propagates_from_place_replica(self):
        """An under-provisioned topology forces the spread fallback; the
        flag must surface on the session placement through Nova.optimize."""
        workload = synthetic_opp_workload(24, seed=5, total_capacity=30.0)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=5)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        assert session.placement.overload_accepted
        assert overload_percentage(session.placement, workload.topology) > 0.0

    def test_well_provisioned_does_not_flag(self):
        workload = synthetic_opp_workload(60, seed=6)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=6)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        assert not session.placement.overload_accepted


class TestPhaseThroughput:
    def test_counters_populated(self):
        workload = synthetic_opp_workload(80, seed=2)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=2)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        timings = session.timings
        assert timings.replicas_placed == workload.matrix.num_pairs()
        assert timings.medians_solved == workload.matrix.num_pairs()
        assert timings.cells_placed == len(session.placement.sub_replicas)
        # The batched query path issues far fewer searches than cells.
        assert 0 < timings.knn_queries <= timings.cells_placed
        assert timings.physical_s > 0 and timings.virtual_s > 0
        assert timings.physical_cells_per_s > 0
        assert timings.virtual_medians_per_s > 0
        assert timings.replicas_per_s > 0
        assert timings.total_s == pytest.approx(
            timings.cost_space_s + timings.resolve_s
            + timings.virtual_s + timings.physical_s
        )

    def test_counters_accumulate_across_reoptimization(self):
        from repro.core.reoptimizer import Reoptimizer
        from repro.topology.dynamics import DataRateChangeEvent

        workload = synthetic_opp_workload(80, seed=4)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        session = Nova(NovaConfig(seed=4)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        before = session.timings.cells_placed
        source = next(op for op in workload.plan.sources())
        Reoptimizer(session).apply(
            DataRateChangeEvent(node_id=source.op_id, new_rate=source.data_rate * 1.5)
        )
        assert session.timings.cells_placed > before
