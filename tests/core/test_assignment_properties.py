"""Property-based invariants of physical replica assignment.

For arbitrary rates, capacities, and sigma, Phase III must uphold:

* grid completeness — every (i, j) partition-pair cell is placed exactly
  once, so the union of sub-joins reconstructs the full join;
* capacity safety — unless overload was explicitly accepted, no node's
  ledger goes negative;
* merge consistency — the total charged demand never exceeds the naive
  per-cell total, and per-node charges equal the node's distinct
  partitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import place_replica
from repro.core.config import NovaConfig
from repro.core.cost_space import CostSpace
from repro.core.partitioning import plan_partitions
from repro.query.expansion import JoinPairReplica

rates = st.floats(min_value=1.0, max_value=300.0)
sigmas = st.floats(min_value=0.05, max_value=1.0)
capacities = st.lists(st.floats(min_value=5.0, max_value=400.0), min_size=3, max_size=12)


def build_problem(left_rate, right_rate, worker_capacities, seed=0):
    rng = np.random.default_rng(seed)
    coords = {
        "nt": np.array([0.0, 0.0]),
        "nw": np.array([10.0, 0.0]),
        "nsink": np.array([5.0, 10.0]),
    }
    available = {"nt": 0.0, "nw": 0.0, "nsink": 0.0}
    for index, capacity in enumerate(worker_capacities):
        name = f"w{index}"
        coords[name] = rng.uniform(0.0, 10.0, 2)
        available[name] = float(capacity)
    replica = JoinPairReplica(
        replica_id="j[txw]",
        join_id="j",
        left_source="t",
        right_source="w",
        left_node="nt",
        right_node="nw",
        sink_id="sink",
        sink_node="nsink",
        left_rate=left_rate,
        right_rate=right_rate,
    )
    return replica, CostSpace(coords), available


@given(rates, rates, sigmas, capacities, st.integers(min_value=0, max_value=1000))
@settings(max_examples=80, deadline=None)
def test_property_grid_complete_and_capacity_safe(
    left_rate, right_rate, sigma, worker_capacities, seed
):
    replica, space, available = build_problem(left_rate, right_rate, worker_capacities, seed)
    original = dict(available)
    config = NovaConfig(sigma=sigma, seed=seed)
    outcome = place_replica(
        replica, np.array([5.0, 3.0]), space, available, config
    )

    partitioning = plan_partitions(left_rate, right_rate, sigma=sigma)
    # Grid completeness: every cell placed exactly once.
    expected_cells = {
        (i, j)
        for i in range(len(partitioning.left_partitions))
        for j in range(len(partitioning.right_partitions))
    }
    placed_cells = set()
    for sub in outcome.subs:
        suffix = sub.sub_id.rsplit("/", 1)[1]
        i, j = (int(part) for part in suffix.split("x"))
        assert (i, j) not in placed_cells
        placed_cells.add((i, j))
    assert placed_cells == expected_cells

    # Capacity safety.
    if not outcome.overload_accepted:
        for node_id, remaining in available.items():
            assert remaining >= -1e-9, node_id

    # Ledger arithmetic: charged == consumed availability.
    consumed = {
        node_id: original[node_id] - available[node_id] for node_id in original
    }
    charged = {}
    for sub in outcome.subs:
        charged[sub.node_id] = charged.get(sub.node_id, 0.0) + sub.charged_capacity
    for node_id, amount in charged.items():
        assert amount == pytest.approx(consumed.get(node_id, 0.0), abs=1e-6)

    # Merge consistency: total charged never exceeds the naive sum, and
    # per-node charge equals that node's distinct partitions.
    naive_total = sum(partitioning.replica_demands())
    assert sum(charged.values()) <= naive_total + 1e-6
    for node_id in charged:
        left_parts = set()
        right_parts = set()
        for sub in outcome.subs:
            if sub.node_id != node_id:
                continue
            suffix = sub.sub_id.rsplit("/", 1)[1]
            i, j = (int(part) for part in suffix.split("x"))
            left_parts.add(i)
            right_parts.add(j)
        expected = sum(partitioning.left_partitions[i] for i in left_parts) + sum(
            partitioning.right_partitions[j] for j in right_parts
        )
        assert charged[node_id] == pytest.approx(expected, abs=1e-6)


@given(rates, rates, st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_property_abundant_capacity_never_overloads(left_rate, right_rate, seed):
    """With one node big enough for everything, no overload ever occurs
    and the total charge collapses to the un-partitioned demand."""
    replica, space, available = build_problem(
        left_rate, right_rate, [10_000.0], seed
    )
    outcome = place_replica(
        replica, np.array([5.0, 3.0]), space, available, NovaConfig(sigma=0.3, seed=seed)
    )
    assert not outcome.overload_accepted
    total_charged = sum(s.charged_capacity for s in outcome.subs)
    assert total_charged == pytest.approx(left_rate + right_rate, rel=1e-6)
