"""The transactional ChangeSet API: coalescing, batching, rollback, deltas."""

import numpy as np
import pytest

from repro.common.errors import (
    OptimizationError,
    UnknownNodeError,
    UnknownOperatorError,
    UnsupportedEventError,
)
from repro.core.changeset import ChangeSet, PlanDelta, apply_changeset
from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.topology.dynamics import (
    AddSourceEvent,
    AddWorkerEvent,
    CapacityChangeEvent,
    CoordinateDriftEvent,
    DataRateChangeEvent,
    RemoveNodeEvent,
    standard_event_suite,
)
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload


def build_session(n=120, seed=5):
    workload = synthetic_opp_workload(n, seed=seed)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    session = Nova(NovaConfig(seed=seed)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    return workload, latency, session


@pytest.fixture()
def session_and_latency():
    _, latency, session = build_session()
    return session, latency


def neighbor_sample(session, latency, anchor=None, count=12):
    ids = [nid for nid in session.topology.node_ids][: count + 1]
    anchor = anchor or ids[0]
    return {nid: latency.latency(anchor, nid) + 1.0 for nid in ids if nid != anchor}


def state_snapshot(session):
    """Everything the rollback contract promises to restore bit-identically."""
    return (
        [(s.sub_id, s.node_id, s.charged_capacity) for s in session.placement.sub_replicas],
        dict(session.placement.pinned),
        {k: v.copy() for k, v in session.placement.virtual_positions.items()},
        session.placement.overload_accepted,
        dict(session.available),
        [r.replica_id for r in session.resolved.replicas],
        sorted(session.topology.node_ids),
        sorted(session.cost_space.node_ids),
        {op.op_id: op.data_rate for op in session.plan.sources()},
        {n.node_id: n.capacity for n in session.topology.nodes()},
    )


def assert_snapshots_equal(before, after):
    for index, (b, a) in enumerate(zip(before, after)):
        if index == 2:
            assert set(b) == set(a), "virtual position key sets differ"
            for key in b:
                assert np.array_equal(b[key], a[key]), f"virtual position {key} differs"
        else:
            assert b == a, f"snapshot field {index} differs"


def assert_invariants(session):
    for sub in session.placement.sub_replicas:
        assert sub.node_id in session.topology
        assert sub.node_id in session.cost_space
    deployed = {s.replica_id for s in session.placement.sub_replicas}
    resolved = {r.replica_id for r in session.resolved.replicas}
    assert deployed == resolved


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_last_rate_change_wins(self):
        changes = ChangeSet(
            [
                DataRateChangeEvent("s", 10.0),
                DataRateChangeEvent("s", 20.0),
                DataRateChangeEvent("s", 30.0),
            ]
        )
        events = changes.coalesced()
        assert events == [DataRateChangeEvent("s", 30.0)]

    def test_distinct_nodes_not_coalesced(self):
        changes = ChangeSet(
            [DataRateChangeEvent("a", 10.0), DataRateChangeEvent("b", 20.0)]
        )
        assert len(changes.coalesced()) == 2

    def test_drift_and_rate_both_survive(self):
        """Different event kinds on one node collapse to one *re-placement*
        (union dedup), but both events execute."""
        changes = ChangeSet(
            [
                CoordinateDriftEvent("s", {"a": 1.0}),
                DataRateChangeEvent("s", 20.0),
            ]
        )
        assert len(changes.coalesced()) == 2

    def test_updates_subsumed_by_removal(self):
        changes = ChangeSet(
            [
                DataRateChangeEvent("s", 10.0),
                CoordinateDriftEvent("s", {"a": 1.0}),
                CapacityChangeEvent("s", 50.0),
                RemoveNodeEvent("s"),
            ]
        )
        assert changes.coalesced() == [RemoveNodeEvent("s")]

    def test_add_worker_annihilates_with_removal(self):
        changes = ChangeSet(
            [
                AddWorkerEvent("w", 100.0, {"a": 1.0}),
                CapacityChangeEvent("w", 50.0),
                RemoveNodeEvent("w"),
                DataRateChangeEvent("other", 5.0),
            ]
        )
        assert changes.coalesced() == [DataRateChangeEvent("other", 5.0)]

    def test_remove_then_readd_kept(self):
        events = [
            RemoveNodeEvent("w"),
            AddWorkerEvent("w", 100.0, {"a": 1.0}),
        ]
        assert ChangeSet(events).coalesced() == events

    def test_unknown_event_type_rejected_at_stage(self):
        with pytest.raises(OptimizationError):
            ChangeSet([object()])


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_batch_sees_its_own_additions(self, session_and_latency):
        session, latency = session_and_latency
        changes = ChangeSet(
            [
                AddWorkerEvent("batch-w", 100.0, neighbor_sample(session, latency)),
                CapacityChangeEvent("batch-w", 80.0),
                RemoveNodeEvent("batch-w"),
            ]
        )
        changes.validate(session)  # does not raise, does not mutate

    def test_ghost_removal_rejected_without_mutation(self, session_and_latency):
        session, _ = session_and_latency
        before = state_snapshot(session)
        with pytest.raises(UnknownNodeError):
            session.apply(
                [DataRateChangeEvent(session.plan.sources()[0].op_id, 77.0),
                 RemoveNodeEvent("ghost")]
            )
        assert_snapshots_equal(before, state_snapshot(session))

    def test_rate_change_on_non_source_rejected(self, session_and_latency):
        session, _ = session_and_latency
        with pytest.raises(OptimizationError):
            session.apply([DataRateChangeEvent("join", 10.0)])

    def test_rate_change_on_unknown_operator(self, session_and_latency):
        session, _ = session_and_latency
        with pytest.raises(UnknownOperatorError):
            session.apply([DataRateChangeEvent("ghost", 10.0)])

    def test_add_source_unknown_stream_rejected(self, session_and_latency):
        session, latency = session_and_latency
        with pytest.raises(OptimizationError):
            session.apply(
                [
                    AddSourceEvent(
                        "x", 1.0, 1.0, "ghost-stream", "whatever",
                        neighbor_sample(session, latency),
                    )
                ]
            )

    def test_double_removal_rejected(self, session_and_latency):
        session, _ = session_and_latency
        victim = session.plan.sources()[0].op_id
        before = state_snapshot(session)
        with pytest.raises(UnknownNodeError):
            session.apply([RemoveNodeEvent(victim), RemoveNodeEvent(victim)])
        assert_snapshots_equal(before, state_snapshot(session))

    def test_sink_removal_migrates_sink(self, session_and_latency):
        """Removing a sink host is no longer rejected: the sink operator
        is re-pinned onto the nearest surviving node and every replica is
        re-anchored to the new sink endpoint."""
        session, _ = session_and_latency
        sink_op = session.plan.sinks()[0]
        sink_node = sink_op.pinned_node
        delta = session.apply([RemoveNodeEvent(sink_node)])
        assert sink_node not in session.topology
        new_host = sink_op.pinned_node
        assert new_host != sink_node
        assert new_host in session.topology
        assert session.placement.pinned[sink_op.op_id] == new_host
        assert delta.pinned_added.get(sink_op.op_id) == new_host
        for replica in session.resolved.replicas:
            assert replica.sink_node == new_host
        for sub in session.placement.sub_replicas:
            assert sub.sink_node == new_host
        assert_invariants(session)

    def test_sink_removal_mid_batch_migrates(self, session_and_latency):
        session, _ = session_and_latency
        sink_op = session.plan.sinks()[0]
        sink_node = sink_op.pinned_node
        victim = session.plan.sources()[0].op_id
        delta = session.apply(
            [DataRateChangeEvent(victim, 55.0), RemoveNodeEvent(sink_node)]
        )
        assert delta.events_applied == 2
        assert sink_node not in session.topology
        assert sink_op.pinned_node in session.topology
        assert session.plan.operator(victim).data_rate == 55.0
        assert_invariants(session)

    def test_sink_removal_without_survivor_rejected(self):
        """The one case migration cannot handle: no node left to land on."""
        from repro.topology.dynamics import BatchState

        state = BatchState(nodes={"the-sink"}, sinks={"the-sink"})
        with pytest.raises(UnsupportedEventError) as excinfo:
            RemoveNodeEvent("the-sink").validate(state)
        assert excinfo.value.event == "remove_node"
        assert excinfo.value.strategy == "nova"
        assert "the-sink" in str(excinfo.value)

    def test_worker_removal_still_allowed(self, session_and_latency):
        """Only sink *hosts* are protected — ordinary workers still leave."""
        session, _ = session_and_latency
        sink_node = session.plan.sinks()[0].pinned_node
        worker = next(
            node_id
            for node_id in session.topology.node_ids
            if node_id != sink_node
            and node_id not in {op.pinned_node for op in session.plan.sources()}
        )
        delta = session.apply([RemoveNodeEvent(worker)])
        assert worker not in session.topology


# ----------------------------------------------------------------------
# batched application
# ----------------------------------------------------------------------
class TestBatchedApply:
    def test_single_packing_pass_for_multi_event_batch(self, session_and_latency):
        session, latency = session_and_latency
        partner = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "right"
        )
        source = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "left"
        )
        delta = session.apply(
            [
                AddSourceEvent(
                    "batch-src", 100.0, 40.0, "left", partner,
                    neighbor_sample(session, latency),
                ),
                DataRateChangeEvent(source, 150.0),
                CoordinateDriftEvent(partner, neighbor_sample(session, latency)),
            ]
        )
        assert delta.timings.packing_passes == 1
        assert delta.events_staged == 3 and delta.events_applied == 3
        assert delta.subs_added
        assert "batch-src" in {r.split("[")[1].split("x")[0] for r in delta.replicas_added} or delta.replicas_added
        assert_invariants(session)

    def test_replicas_touched_by_multiple_events_deduped(self, session_and_latency):
        session, latency = session_and_latency
        partner = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "right"
        )
        delta = session.apply(
            [
                CoordinateDriftEvent(partner, neighbor_sample(session, latency)),
                DataRateChangeEvent(partner, 120.0),
            ]
        )
        replaced = delta.replicas_replaced
        assert len(replaced) == len(set(replaced))
        # Phase II re-solved each affected replica's median exactly once.
        assert delta.timings.medians_solved == len(
            [r for r in replaced if r in delta.virtual_updated]
        )
        assert_invariants(session)

    def test_empty_batch_is_a_noop(self, session_and_latency):
        session, _ = session_and_latency
        before = state_snapshot(session)
        delta = session.apply([])
        assert delta.is_empty
        assert delta.timings.packing_passes == 0
        assert_snapshots_equal(before, state_snapshot(session))

    def test_transaction_context_manager(self, session_and_latency):
        session, latency = session_and_latency
        source = session.plan.sources()[3].op_id
        with session.transaction() as txn:
            txn.stage(AddWorkerEvent("txn-w", 200.0, neighbor_sample(session, latency)))
            txn.stage(DataRateChangeEvent(source, 66.0))
        assert txn.delta is not None
        assert txn.delta.events_applied == 2
        assert "txn-w" in session.topology
        assert session.plan.operator(source).data_rate == 66.0
        assert_invariants(session)

    def test_transaction_aborted_by_exception_applies_nothing(
        self, session_and_latency
    ):
        session, _ = session_and_latency
        before = state_snapshot(session)
        source = session.plan.sources()[3].op_id
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.stage(DataRateChangeEvent(source, 66.0))
                raise RuntimeError("caller changed its mind")
        assert txn.delta is None
        assert_snapshots_equal(before, state_snapshot(session))

    def test_changeset_round_trip(self):
        changes = ChangeSet(
            [
                AddWorkerEvent("w", 10.0, {"a": 1.0}),
                DataRateChangeEvent("s", 42.0),
                RemoveNodeEvent("gone"),
            ]
        )
        rebuilt = ChangeSet.from_dict(changes.to_dict())
        assert list(rebuilt) == list(changes)


# ----------------------------------------------------------------------
# batch-vs-sequential parity
# ----------------------------------------------------------------------
def fig10_events(session, seed=13):
    rng = np.random.default_rng(seed)
    sources = session.plan.sources()
    left = next(op for op in sources if op.logical_stream == "left")
    right = next(op for op in sources if op.logical_stream == "right")
    hosting = {s.node_id for s in session.placement.sub_replicas}
    pinned = set(session.placement.pinned.values())
    idle = [
        nid for nid in session.topology.node_ids
        if nid not in hosting and nid not in pinned
    ]
    worker = idle[0] if idle else session.topology.node_ids[-1]
    sample = [nid for nid in session.topology.node_ids[:16] if nid != right.op_id]
    neighbors = {nid: float(rng.uniform(1.0, 100.0)) for nid in sample}
    return standard_event_suite(
        existing_worker=worker,
        existing_source=left.op_id,
        partner_source=right.op_id,
        neighbor_latencies=neighbors,
        next_id=f"parity{seed}",
    )


class TestBatchSequentialParity:
    @pytest.mark.parametrize("n", [300, 1000])
    def test_fig10_suite_placement_identical(self, n):
        """The five-event scalability suite lands the same placement whether
        applied per event or as one ChangeSet (asserted at n=10^3, the
        acceptance bar, plus a faster n=300 smoke point)."""
        _, _, sequential = build_session(n=n, seed=13)
        _, _, batched = build_session(n=n, seed=13)

        events = fig10_events(sequential)
        assert events == fig10_events(batched)  # identical sessions, same suite

        passes_before = sequential.timings.packing_passes
        for event in events:
            sequential.apply([event])
        sequential_passes = sequential.timings.packing_passes - passes_before

        delta = batched.apply(events)
        assert delta.timings.packing_passes == 1
        assert delta.timings.packing_passes < sequential_passes

        def placed(session):
            return {
                (s.sub_id, s.node_id, round(s.charged_capacity, 9))
                for s in session.placement.sub_replicas
            }

        assert placed(sequential) == placed(batched)
        assert dict(sequential.available).keys() == dict(batched.available).keys()
        for node_id, value in sequential.available.items():
            assert batched.available[node_id] == pytest.approx(value, abs=1e-9)
        seq_virtual = sequential.placement.virtual_positions
        bat_virtual = batched.placement.virtual_positions
        assert set(seq_virtual) == set(bat_virtual)
        for replica_id in seq_virtual:
            assert np.allclose(seq_virtual[replica_id], bat_virtual[replica_id])


# ----------------------------------------------------------------------
# transactional rollback
# ----------------------------------------------------------------------
class TestRollback:
    def test_packing_failure_rolls_back_bit_identically(
        self, session_and_latency, monkeypatch
    ):
        session, latency = session_and_latency
        before = state_snapshot(session)
        host = session.placement.sub_replicas[0].node_id
        source = session.plan.sources()[2].op_id

        def boom(replicas):
            raise RuntimeError("injected packing failure")

        monkeypatch.setattr(session, "place_replicas", boom)
        with pytest.raises(RuntimeError):
            session.apply(
                [
                    AddWorkerEvent(
                        "roll-w", 200.0, neighbor_sample(session, latency)
                    ),
                    RemoveNodeEvent(host),
                    DataRateChangeEvent(source, 250.0),
                    CoordinateDriftEvent(
                        source, neighbor_sample(session, latency, anchor=source)
                    ),
                ]
            )
        assert_snapshots_equal(before, state_snapshot(session))

    def test_session_usable_after_rollback(self, session_and_latency, monkeypatch):
        session, latency = session_and_latency
        source = session.plan.sources()[2].op_id
        original = session.place_replicas

        calls = {"n": 0}

        def flaky(replicas):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient failure")
            return original(replicas)

        monkeypatch.setattr(session, "place_replicas", flaky)
        with pytest.raises(RuntimeError):
            session.apply([DataRateChangeEvent(source, 250.0)])
        delta = session.apply([DataRateChangeEvent(source, 99.0)])
        assert delta.events_applied == 1
        assert session.plan.operator(source).data_rate == 99.0
        assert_invariants(session)

    def test_source_removal_rollback_restores_matrix_and_plan(
        self, session_and_latency, monkeypatch
    ):
        session, _ = session_and_latency
        source = next(
            op.op_id
            for op in session.plan.sources()
            if op.op_id in session.matrix.left_ids
        )
        left_before = session.matrix.left_ids
        pairs_before = set(session.matrix.pairs())

        def boom(replicas):
            raise RuntimeError("injected")

        monkeypatch.setattr(session, "place_replicas", boom)
        # Removing the source deletes replicas; a drift on another node
        # forces a final packing pass that then fails.
        other = next(
            op.op_id for op in session.plan.sources() if op.op_id != source
        )
        anchor = next(
            nid for nid in session.topology.node_ids
            if nid not in (source, other)
        )
        with pytest.raises(RuntimeError):
            session.apply(
                [
                    RemoveNodeEvent(source),
                    CoordinateDriftEvent(other, {anchor: 5.0}),
                ]
            )
        assert session.matrix.left_ids == left_before
        assert set(session.matrix.pairs()) == pairs_before
        assert source in session.plan
        assert source in session.topology
        assert source in session.cost_space
        assert_invariants(session)

    def test_sink_migration_rolls_back_bit_identically(
        self, session_and_latency, monkeypatch
    ):
        """A failed batch containing a sink migration restores the sink
        pin, every replica's sink anchor, and the placement exactly."""
        session, _ = session_and_latency
        sink_op = session.plan.sinks()[0]
        sink_node = sink_op.pinned_node
        before = state_snapshot(session)
        anchors_before = [r.sink_node for r in session.resolved.replicas]

        def boom(replicas):
            raise RuntimeError("injected packing failure")

        monkeypatch.setattr(session, "place_replicas", boom)
        with pytest.raises(RuntimeError):
            session.apply([RemoveNodeEvent(sink_node)])
        assert sink_op.pinned_node == sink_node
        assert [r.sink_node for r in session.resolved.replicas] == anchors_before
        assert_snapshots_equal(before, state_snapshot(session))
        assert_invariants(session)


# ----------------------------------------------------------------------
# the capacity fast path (satellite)
# ----------------------------------------------------------------------
class TestCapacityFastPath:
    def test_capacity_increase_moves_nothing(self, session_and_latency):
        session, _ = session_and_latency
        host = session.placement.sub_replicas[0].node_id
        hosted_before = {
            (s.sub_id, s.node_id) for s in session.placement.subs_on_node(host)
        }
        assert hosted_before
        old_capacity = session.topology.node(host).capacity
        delta = session.apply([CapacityChangeEvent(host, old_capacity * 2.0)])
        hosted_after = {
            (s.sub_id, s.node_id) for s in session.placement.subs_on_node(host)
        }
        assert hosted_after == hosted_before  # nothing re-placed
        assert delta.timings.packing_passes == 0
        assert not delta.subs_added and not delta.subs_removed
        assert delta.availability_delta.get(host, 0.0) > 0.0
        assert_invariants(session)

    def test_capacity_increase_bumps_mutation_epoch(self, session_and_latency):
        """Raised availability must invalidate cached rings (the node may
        now qualify for thresholds it previously failed)."""
        session, _ = session_and_latency
        host = session.placement.sub_replicas[0].node_id
        epoch_before = session.cost_space.mutation_epoch
        session.apply(
            [CapacityChangeEvent(host, session.topology.node(host).capacity * 2.0)]
        )
        assert session.cost_space.mutation_epoch > epoch_before

    def test_covering_decrease_keeps_placement(self, session_and_latency):
        session, _ = session_and_latency
        host = session.placement.sub_replicas[0].node_id
        load = session.placement.node_loads()[host]
        ingestion = sum(
            op.data_rate
            for op in session.plan.sources()
            if op.pinned_node == host
        )
        new_capacity = load + ingestion + 1.0  # still covers everything hosted
        hosted_before = {
            (s.sub_id, s.node_id) for s in session.placement.subs_on_node(host)
        }
        delta = session.apply([CapacityChangeEvent(host, new_capacity)])
        hosted_after = {
            (s.sub_id, s.node_id) for s in session.placement.subs_on_node(host)
        }
        assert hosted_after == hosted_before
        assert delta.timings.packing_passes == 0
        assert session.available[host] == pytest.approx(1.0)

    def test_real_decrease_still_rebalances(self, session_and_latency):
        session, _ = session_and_latency
        host = session.placement.sub_replicas[0].node_id
        delta = session.apply([CapacityChangeEvent(host, 0.5)])
        assert session.topology.node(host).capacity == 0.5
        assert delta.timings.packing_passes == 1
        assert_invariants(session)


# ----------------------------------------------------------------------
# the structured diff
# ----------------------------------------------------------------------
class TestPlanDelta:
    def test_delta_replays_onto_placement_copy(self, session_and_latency):
        """base placement + delta  ==  live placement after the batch."""
        session, latency = session_and_latency
        base = session.placement.copy()
        partner = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "right"
        )
        delta = session.apply(
            [
                DataRateChangeEvent(partner, 140.0),
                AddWorkerEvent("replay-w", 300.0, neighbor_sample(session, latency)),
            ]
        )
        replayed = delta.apply_to(base)

        def as_set(placement):
            return {
                (s.sub_id, s.node_id, round(s.charged_capacity, 9))
                for s in placement.sub_replicas
            }

        assert as_set(replayed) == as_set(session.placement)
        assert replayed.pinned == session.placement.pinned
        assert set(replayed.virtual_positions) == set(
            session.placement.virtual_positions
        )
        for replica_id, position in session.placement.virtual_positions.items():
            assert np.allclose(replayed.virtual_positions[replica_id], position)
        assert replayed.node_loads() == pytest.approx(
            session.placement.node_loads()
        )

    def test_moves_reported_for_rehosted_cells(self, session_and_latency):
        session, _ = session_and_latency
        host = session.placement.sub_replicas[0].node_id
        delta = session.apply([RemoveNodeEvent(host)])
        # Every sub of a replica touching the dead host was undeployed;
        # moves pair identical cells across their old and new hosts.
        assert delta.subs_removed
        removed_nodes = {sub.node_id for sub in delta.subs_removed}
        assert host in removed_nodes
        for sub_id, old_node, new_node in delta.moves:
            assert old_node in removed_nodes
            assert new_node != old_node
            assert new_node != host  # the dead host cannot receive work

    def test_availability_delta_tracks_removed_and_added_nodes(
        self, session_and_latency
    ):
        session, latency = session_and_latency
        hosting = {s.node_id for s in session.placement.sub_replicas}
        pinned = set(session.placement.pinned.values())
        idle = next(
            nid
            for nid in session.topology.node_ids
            if nid not in hosting and nid not in pinned
        )
        idle_avail = session.available[idle]
        delta = session.apply(
            [
                RemoveNodeEvent(idle),
                AddWorkerEvent("fresh-w", 123.0, neighbor_sample(session, latency)),
            ]
        )
        assert delta.availability_delta[idle] == pytest.approx(-idle_avail)
        assert delta.availability_delta["fresh-w"] == pytest.approx(123.0)

    def test_demand_delta_matches_placement_totals(self, session_and_latency):
        session, _ = session_and_latency
        before = session.placement.total_demand()
        source = session.plan.sources()[1].op_id
        delta = session.apply([DataRateChangeEvent(source, 5.0)])
        assert delta.demand_delta == pytest.approx(
            session.placement.total_demand() - before
        )

    def test_pins_net_filtered_when_source_added_then_removed(
        self, session_and_latency
    ):
        """A source added and removed in one batch must not replay a pin
        for a node absent from the final topology."""
        session, latency = session_and_latency
        base = session.placement.copy()
        partner = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "right"
        )
        delta = session.apply(
            [
                AddSourceEvent(
                    "ephemeral", 100.0, 40.0, "left", partner,
                    neighbor_sample(session, latency),
                ),
                RemoveNodeEvent("ephemeral"),
            ]
        )
        assert "ephemeral" not in delta.pinned_added
        assert "ephemeral" not in delta.pinned_removed
        replayed = delta.apply_to(base)
        assert replayed.pinned == session.placement.pinned
        assert "ephemeral" not in replayed.pinned


class TestStagedValidation:
    def test_duplicate_add_not_legitimized_by_annihilation(
        self, session_and_latency
    ):
        """Adding an *existing* node and removing it coalesces to nothing,
        but the batch must still be rejected (sequential equivalence)."""
        session, latency = session_and_latency
        existing = next(
            nid for nid in session.topology.node_ids
            if nid not in set(session.placement.pinned.values())
        )
        before = state_snapshot(session)
        changes = ChangeSet(
            [
                AddWorkerEvent(existing, 100.0, neighbor_sample(session, latency)),
                RemoveNodeEvent(existing),
            ]
        )
        assert changes.coalesced() == []  # annihilated...
        with pytest.raises(OptimizationError):
            session.apply(changes)  # ...but still invalid
        assert_snapshots_equal(before, state_snapshot(session))

    def test_double_add_rejected_even_with_removal(self, session_and_latency):
        session, latency = session_and_latency
        neighbors = neighbor_sample(session, latency)
        before = state_snapshot(session)
        with pytest.raises(OptimizationError):
            session.apply(
                [
                    AddWorkerEvent("dup-w", 100.0, neighbors),
                    AddWorkerEvent("dup-w", 150.0, neighbors),
                    RemoveNodeEvent("dup-w"),
                ]
            )
        assert_snapshots_equal(before, state_snapshot(session))


def test_rollback_restores_topology_positions():
    """Geometric positions survive a rolled-back node removal (synthetic
    topologies need them for positions_array / CoordinateLatencyModel)."""
    _, _, session = build_session(n=100, seed=7)
    assert session.topology.has_positions()
    pinned = set(session.placement.pinned.values())
    host = next(
        sub.node_id
        for sub in session.placement.sub_replicas
        if sub.node_id not in pinned
    )
    position_before = session.topology.position(host).copy()

    def boom(replicas):
        raise RuntimeError("injected")

    original = session.place_replicas
    session.place_replicas = boom
    try:
        with pytest.raises(RuntimeError):
            session.apply([RemoveNodeEvent(host)])
    finally:
        session.place_replicas = original
    assert session.topology.has_positions()
    assert np.array_equal(session.topology.position(host), position_before)
    session.topology.positions_array()  # must not raise
