"""The Phase III packing engine: shared cursor cache, leases, workers."""

import numpy as np
import pytest

from repro.core.assignment import place_replica
from repro.core.config import NovaConfig
from repro.core.cost_space import AvailabilityLedger, CostSpace
from repro.core.packing import PackingEngine
from repro.query.expansion import JoinPairReplica


def make_replica(index, left_node, right_node, sink_node, rate=10.0):
    return JoinPairReplica(
        replica_id=f"r{index}",
        join_id="join",
        left_source=f"L{index}",
        right_source=f"R{index}",
        left_node=left_node,
        right_node=right_node,
        sink_id="sink_op",
        sink_node=sink_node,
        left_rate=rate,
        right_rate=rate,
    )


def cluster_scenario(seed=0, clusters=4, nodes_per_cluster=40, replicas_per_cluster=8):
    """Widely separated clusters: cross-cluster interaction is impossible.

    Each replica's virtual position sits inside its own cluster, every
    candidate ring eventually reaches other clusters only at distances no
    placement will ever prefer, and capacities are generous — so serial
    and lease-parallel packing must produce identical placements no
    matter how replicas split between workers and the serial cleanup
    pass.
    """
    rng = np.random.default_rng(seed)
    centers = [np.array([50_000.0 * i, 20_000.0 * (i % 2)]) for i in range(clusters)]
    coords = {}
    jobs = []
    for c, center in enumerate(centers):
        ids = []
        for i in range(nodes_per_cluster):
            node_id = f"c{c}n{i}"
            coords[node_id] = center + rng.normal(scale=3.0, size=2)
            ids.append(node_id)
        for r in range(replicas_per_cluster):
            replica = make_replica(f"{c}_{r}", ids[0], ids[1], ids[2], rate=5.0 + r)
            position = center + rng.normal(scale=2.0, size=2)
            jobs.append((replica, position))
    rng.shuffle(jobs)
    capacities = {node_id: 200.0 for node_id in coords}
    return coords, capacities, jobs


def run_engine(coords, capacities, jobs, **config_overrides):
    config = NovaConfig(seed=1, packing_parallel_min=1, **config_overrides)
    cost_space = CostSpace(coords, config)
    available = AvailabilityLedger(cost_space, backing=dict(capacities))
    engine = PackingEngine(cost_space, config)
    outcomes = engine.pack(jobs, available)
    return engine, available, outcomes


def placement_signature(outcomes):
    return [
        (sub.sub_id, sub.node_id, round(sub.charged_capacity, 9))
        for outcome in outcomes
        for sub in outcome.subs
    ]


class TestSerialParallelParity:
    def test_cluster_workload_identical_across_worker_counts(self):
        coords, capacities, jobs = cluster_scenario()
        reference = None
        for workers in (1, 2, 4, 8):
            _, available, outcomes = run_engine(
                coords, capacities, jobs, packing_workers=workers
            )
            signature = placement_signature(outcomes)
            if reference is None:
                reference = (signature, dict(available))
            else:
                assert signature == reference[0], f"workers={workers} diverged"
                assert dict(available) == reference[1]

    def test_cluster_workload_identical_across_seeds(self):
        for seed in (0, 7, 23):
            coords, capacities, jobs = cluster_scenario(seed=seed)
            serial = placement_signature(
                run_engine(coords, capacities, jobs, packing_workers=1)[2]
            )
            parallel = placement_signature(
                run_engine(coords, capacities, jobs, packing_workers=3)[2]
            )
            assert serial == parallel, f"seed {seed} diverged"

    def test_parallel_outcomes_keep_job_order(self):
        coords, capacities, jobs = cluster_scenario(seed=3)
        _, _, outcomes = run_engine(coords, capacities, jobs, packing_workers=4)
        assert [o.subs[0].replica_id for o in outcomes] == [
            replica.replica_id for replica, _ in jobs
        ]

    def test_parallel_counters_reported(self):
        coords, capacities, jobs = cluster_scenario(seed=5)
        engine, _, _ = run_engine(coords, capacities, jobs, packing_workers=2)
        assert engine.stats.workers_used >= 1
        assert engine.stats.batches + engine.stats.deferred > 0
        assert sum(engine.stats.worker_cells.values()) >= 0


class TestCommitTimeSpoilPoisonsUnit:
    def test_hot_zone_write_between_unit_jobs_poisons_later_jobs(self):
        """Regression: the first commit-time spoil must poison its unit.

        Hot-zone job H (ordered first, in a node-less bucket) lightly
        drains X, the lease bucket's closest node. C's worker
        speculatively filled X, so C's ops are spoiled and C recomputes
        serially — landing on W and leaving X with capacity. D's worker
        speculated *after* C drained X, rejected it, and chose Y; but
        the serial reference places D on X (C's discarded drain never
        happened there). Committing D's ops verbatim would silently
        diverge — D must be recomputed because its unit is poisoned.
        """
        coords = {
            "P1": np.array([-1.0, -1.0]),
            "P2": np.array([20.0, 20.0]),
            "W": np.array([3.0, 5.0]),
            "X": np.array([5.0, 5.0]),
            "Y": np.array([8.0, 5.0]),
        }
        capacities = {"P1": 100.0, "P2": 100.0, "W": 10.0, "X": 10.0, "Y": 10.0}
        jobs = [
            # sigma=1.0 keeps every grid 1x1, so cell demand = 2 * rate.
            (make_replica("H", "P1", "P2", "P1", rate=2.0), np.array([5.0, 12.0])),
            (make_replica("C", "P1", "P2", "P1", rate=3.5), np.array([5.2, 5.0])),
            (make_replica("D", "P1", "P2", "P1", rate=2.5), np.array([6.0, 5.0])),
        ]
        overrides = dict(sigma=1.0, packing_bucket_grid=2)
        _, serial_avail, serial = run_engine(
            coords, capacities, jobs, packing_workers=1, **overrides
        )
        # Pin the scenario: H -> X (light drain), C -> W (X now too
        # drained for C), D -> X (still fits D's smaller demand).
        assert [o.subs[0].node_id for o in serial] == ["X", "W", "X"]
        engine, parallel_avail, parallel = run_engine(
            coords, capacities, jobs, packing_workers=2, **overrides
        )
        assert placement_signature(parallel) == placement_signature(serial)
        assert dict(parallel_avail) == dict(serial_avail)
        # The parallel run really exercised the poison path: H streamed
        # through the hot zone, C was spoiled, D was poisoned — nothing
        # committed verbatim.
        assert engine.stats.hot_zone == 1
        assert engine.stats.speculated == 0
        assert engine.stats.deferred == 2


class TestSharedCursorCache:
    def test_rings_shared_across_replicas(self):
        coords, capacities, jobs = cluster_scenario(seed=2, clusters=1)
        engine, _, _ = run_engine(coords, capacities, jobs, packing_bucket_grid=4)
        stats = engine.stats
        assert stats.cursor_cache_hits > 0
        assert stats.cursor_cache_misses >= 1
        # One tight cluster: far fewer rings than (replica, demand) pairs.
        assert engine.cached_rings < len(jobs)

    def test_bucket_grid_does_not_change_placements(self):
        coords, capacities, jobs = cluster_scenario(seed=11)
        reference = None
        for grid in (8, 32, 128):
            _, _, outcomes = run_engine(
                coords, capacities, jobs, packing_bucket_grid=grid
            )
            signature = placement_signature(outcomes)
            if reference is None:
                reference = signature
            else:
                # The cache is a pure performance structure: the engine
                # always places on the provably nearest qualifying host,
                # so bucketing granularity must be placement-invariant.
                assert signature == reference

    def test_capacity_increase_invalidates_cache(self):
        config = NovaConfig(seed=1)
        coords = {f"n{i}": np.array([float(i), 0.0]) for i in range(10)}
        coords["near"] = np.array([0.0, 0.45])
        cost_space = CostSpace(coords, config)
        capacities = {node_id: 100.0 for node_id in coords}
        capacities["near"] = 0.0  # saturated: excluded from the first ring
        available = AvailabilityLedger(cost_space, backing=capacities)
        engine = PackingEngine(cost_space, config)
        position = np.array([0.0, 0.5])
        first = engine.place_replica(make_replica(0, "n5", "n6", "n7"), position, available)
        assert "near" not in {sub.node_id for sub in first.subs}
        assert engine.cached_rings > 0
        # Capacity returns (an undeploy): the epoch bump must flush the
        # rings, and the next replica must see the revived nearest node.
        available["near"] = 500.0
        second = engine.place_replica(make_replica(1, "n5", "n6", "n7"), position, available)
        assert engine.stats.knn_queries >= 2
        assert {sub.node_id for sub in second.subs} == {"near"}

    def test_remove_node_invalidates_cache(self):
        config = NovaConfig(seed=1)
        coords = {f"n{i}": np.array([float(i), 0.0]) for i in range(12)}
        cost_space = CostSpace(coords, config)
        available = AvailabilityLedger(
            cost_space, backing={node_id: 50.0 for node_id in coords}
        )
        engine = PackingEngine(cost_space, config)
        position = np.array([0.0, 0.1])
        first = engine.place_replica(make_replica(0, "n8", "n9", "n10"), position, available)
        host = first.subs[0].node_id
        rings_before = engine.cached_rings
        assert rings_before > 0
        available.pop(host, None)
        cost_space.remove_node(host)
        second = engine.place_replica(make_replica(1, "n8", "n9", "n10"), position, available)
        assert host not in {sub.node_id for sub in second.subs}

    def test_decreases_do_not_invalidate(self):
        config = NovaConfig(seed=1)
        coords = {f"n{i}": np.array([float(i), 0.0]) for i in range(12)}
        cost_space = CostSpace(coords, config)
        available = AvailabilityLedger(
            cost_space, backing={node_id: 50.0 for node_id in coords}
        )
        engine = PackingEngine(cost_space, config)
        position = np.array([0.0, 0.1])
        engine.place_replica(make_replica(0, "n8", "n9", "n10"), position, available)
        epoch = cost_space.mutation_epoch
        misses = engine.stats.cursor_cache_misses
        engine.place_replica(make_replica(1, "n8", "n9", "n10"), position, available)
        assert cost_space.mutation_epoch == epoch
        assert engine.stats.cursor_cache_misses == misses  # pure cache hits
        assert engine.stats.cursor_cache_hits > 0


class TestWrapperCompatibility:
    def test_place_replica_matches_engine(self):
        config = NovaConfig(seed=1)
        coords = {f"n{i}": np.array([float(i % 5), float(i // 5)]) for i in range(25)}
        replica = make_replica(0, "n1", "n2", "n3", rate=12.0)
        position = np.array([1.0, 1.0])

        cost_space = CostSpace(coords, config)
        backing = {node_id: 60.0 for node_id in coords}
        wrapper_outcome = place_replica(
            replica, position, cost_space, dict(backing), config
        )

        cost_space2 = CostSpace(coords, config)
        engine = PackingEngine(cost_space2, config)
        engine_outcome = engine.place_replica(replica, position, dict(backing))

        assert [(s.sub_id, s.node_id) for s in wrapper_outcome.subs] == [
            (s.sub_id, s.node_id) for s in engine_outcome.subs
        ]
        assert wrapper_outcome.overload_accepted == engine_outcome.overload_accepted

    def test_spread_fallback_still_flags_overload(self):
        config = NovaConfig(seed=1)
        coords = {f"n{i}": np.array([float(i), 0.0]) for i in range(4)}
        cost_space = CostSpace(coords, config)
        available = {node_id: 1.0 for node_id in coords}
        replica = make_replica(0, "n0", "n1", "n2", rate=50.0)
        outcome = place_replica(
            replica, np.array([0.0, 0.0]), cost_space, available, config
        )
        assert outcome.overload_accepted
        assert outcome.subs


class TestParallelEndToEnd:
    def test_session_parity_on_synthetic_workload(self):
        from repro.core.optimizer import Nova
        from repro.topology.latency import DenseLatencyMatrix
        from repro.workloads.synthetic import synthetic_opp_workload

        workload = synthetic_opp_workload(300, seed=19)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        sessions = {}
        for workers in (1, 2, 4):
            sessions[workers] = Nova(
                NovaConfig(seed=19, packing_workers=workers)
            ).optimize(workload.topology, workload.plan, workload.matrix, latency=latency)
        serial = sessions[1]
        serial_placed = [
            (s.sub_id, s.node_id, s.charged_capacity)
            for s in serial.placement.sub_replicas
        ]
        for workers in (2, 4):
            parallel = sessions[workers]
            # Bit-identical placement and ledger: speculative lease
            # packing commits in original job order, so every worker
            # count reproduces the serial engine's exact state.
            assert [
                (s.sub_id, s.node_id, s.charged_capacity)
                for s in parallel.placement.sub_replicas
            ] == serial_placed
            assert dict(parallel.available) == dict(serial.available)
            assert (
                parallel.placement.overload_accepted
                == serial.placement.overload_accepted
            )
        for session in sessions.values():
            session.close()
