"""Incremental re-optimization (Section 3.5)."""

import numpy as np
import pytest

from repro.common.errors import OptimizationError, UnknownNodeError
from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.core.reoptimizer import Reoptimizer
from repro.topology.dynamics import (
    AddSourceEvent,
    AddWorkerEvent,
    CapacityChangeEvent,
    CoordinateDriftEvent,
    DataRateChangeEvent,
    RemoveNodeEvent,
)
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload


@pytest.fixture()
def session_and_latency():
    workload = synthetic_opp_workload(120, seed=5)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    session = Nova(NovaConfig(seed=5)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    return session, latency


def neighbor_sample(session, latency, anchor=None, count=12):
    ids = [nid for nid in session.topology.node_ids][:count + 1]
    anchor = anchor or ids[0]
    return {nid: latency.latency(anchor, nid) + 1.0 for nid in ids if nid != anchor}


def assert_invariants(session):
    """Structural invariants that must hold after every event."""
    for sub in session.placement.sub_replicas:
        assert sub.node_id in session.topology
        assert sub.node_id in session.cost_space
    deployed = {s.replica_id for s in session.placement.sub_replicas}
    resolved = {r.replica_id for r in session.resolved.replicas}
    assert deployed == resolved


class TestAddWorker:
    def test_worker_becomes_available(self, session_and_latency):
        session, latency = session_and_latency
        re = Reoptimizer(session)
        re.add_worker(AddWorkerEvent("fresh", 500.0, neighbor_sample(session, latency)))
        assert "fresh" in session.topology
        assert "fresh" in session.cost_space
        assert session.available["fresh"] == 500.0
        assert_invariants(session)


class TestAddSource:
    def test_new_pair_placed(self, session_and_latency):
        session, latency = session_and_latency
        re = Reoptimizer(session)
        partner = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "right"
        )
        before = session.placement.replica_count()
        re.add_source(
            AddSourceEvent(
                node_id="newsrc",
                capacity=100.0,
                data_rate=40.0,
                logical_stream="left",
                partner_source=partner,
                neighbor_latencies_ms=neighbor_sample(session, latency),
            )
        )
        assert session.placement.replica_count() > before
        assert "newsrc" in session.plan
        assert "newsrc" in session.matrix.left_ids
        assert_invariants(session)

    def test_right_stream_source(self, session_and_latency):
        session, latency = session_and_latency
        re = Reoptimizer(session)
        partner = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "left"
        )
        re.add_source(
            AddSourceEvent(
                node_id="newright",
                capacity=100.0,
                data_rate=40.0,
                logical_stream="right",
                partner_source=partner,
                neighbor_latencies_ms=neighbor_sample(session, latency),
            )
        )
        assert "newright" in session.matrix.right_ids
        assert_invariants(session)

    def test_unknown_stream_rejected(self, session_and_latency):
        session, latency = session_and_latency
        re = Reoptimizer(session)
        with pytest.raises(OptimizationError):
            re.add_source(
                AddSourceEvent(
                    node_id="x",
                    capacity=1.0,
                    data_rate=1.0,
                    logical_stream="ghost-stream",
                    partner_source="whatever",
                    neighbor_latencies_ms=neighbor_sample(session, latency),
                )
            )


class TestRemoveNode:
    def test_remove_source_drops_its_pairs(self, session_and_latency):
        session, _ = session_and_latency
        source = session.plan.sources()[0]
        affected = {
            r.replica_id
            for r in session.resolved.replicas
            if source.op_id in (r.left_source, r.right_source)
        }
        re = Reoptimizer(session)
        re.remove_node(source.op_id)
        assert source.op_id not in session.topology
        assert source.op_id not in session.plan
        remaining = {r.replica_id for r in session.resolved.replicas}
        assert not (affected & remaining)
        assert_invariants(session)

    def test_remove_join_host_replaces_elsewhere(self, session_and_latency):
        session, _ = session_and_latency
        host = session.placement.sub_replicas[0].node_id
        hosted = {s.replica_id for s in session.placement.subs_on_node(host)}
        re = Reoptimizer(session)
        re.remove_node(host)
        assert host not in session.topology
        # Affected replicas are deployed again, on other nodes.
        deployed = {s.replica_id for s in session.placement.sub_replicas}
        assert hosted <= deployed
        assert_invariants(session)

    def test_remove_idle_worker_is_cheap(self, session_and_latency):
        session, _ = session_and_latency
        hosting = {s.node_id for s in session.placement.sub_replicas}
        pinned = set(session.placement.pinned.values())
        idle = next(
            nid for nid in session.topology.node_ids
            if nid not in hosting and nid not in pinned
        )
        before = session.placement.replica_count()
        Reoptimizer(session).remove_node(idle)
        assert session.placement.replica_count() == before
        assert_invariants(session)

    def test_remove_unknown_raises(self, session_and_latency):
        session, _ = session_and_latency
        with pytest.raises(UnknownNodeError):
            Reoptimizer(session).remove_node("ghost")


class TestWorkloadChanges:
    def test_rate_change_updates_descriptors(self, session_and_latency):
        session, _ = session_and_latency
        source = session.plan.sources()[2]
        re = Reoptimizer(session)
        re.change_data_rate(source.op_id, 180.0)
        assert session.plan.operator(source.op_id).data_rate == 180.0
        for replica in session.resolved.replicas:
            if replica.left_source == source.op_id:
                assert replica.left_rate == 180.0
            if replica.right_source == source.op_id:
                assert replica.right_rate == 180.0
        assert_invariants(session)

    def test_rate_change_on_non_source_rejected(self, session_and_latency):
        session, _ = session_and_latency
        with pytest.raises(OptimizationError):
            Reoptimizer(session).change_data_rate("join", 10.0)

    def test_capacity_change_rebalances(self, session_and_latency):
        session, _ = session_and_latency
        host = session.placement.sub_replicas[0].node_id
        re = Reoptimizer(session)
        re.change_capacity(host, 0.5)
        assert session.topology.node(host).capacity == 0.5
        assert_invariants(session)

    def test_coordinate_drift_replaces_anchored(self, session_and_latency):
        session, latency = session_and_latency
        source = session.plan.sources()[0]
        re = Reoptimizer(session)
        re.update_coordinates(
            source.op_id, neighbor_sample(session, latency, anchor=source.op_id)
        )
        assert_invariants(session)


class TestDispatch:
    def test_apply_dispatches_all_event_types(self, session_and_latency):
        session, latency = session_and_latency
        re = Reoptimizer(session)
        source_left = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "left"
        )
        source_right = next(
            op.op_id for op in session.plan.sources() if op.logical_stream == "right"
        )
        events = [
            AddWorkerEvent("w_apply", 100.0, neighbor_sample(session, latency)),
            AddSourceEvent(
                "s_apply", 50.0, 20.0, "left", source_right,
                neighbor_sample(session, latency),
            ),
            DataRateChangeEvent(source_left, 75.0),
            CapacityChangeEvent("w_apply", 80.0),
            CoordinateDriftEvent(source_right, neighbor_sample(session, latency)),
            RemoveNodeEvent("w_apply"),
        ]
        for event in events:
            re.apply(event)
        assert_invariants(session)

    def test_unknown_event_rejected(self, session_and_latency):
        session, _ = session_and_latency
        with pytest.raises(OptimizationError):
            Reoptimizer(session).apply(object())


class TestDeprecationShim:
    def test_warns_exactly_once_per_session(self, session_and_latency):
        session, _ = session_and_latency
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Reoptimizer(session)
            Reoptimizer(session)
            Reoptimizer(session)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "session.apply" in str(deprecations[0].message)

    def test_fresh_session_warns_again(self, session_and_latency):
        session, latency = session_and_latency
        import warnings

        workload = synthetic_opp_workload(40, seed=7)
        fresh_latency = DenseLatencyMatrix.from_topology(workload.topology)
        fresh = Nova(NovaConfig(seed=7)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=fresh_latency
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Reoptimizer(session)
            Reoptimizer(fresh)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        # One per distinct session: the flag lives on the session object.
        assert len(deprecations) == 2

    def test_warn_opt_out_respected(self, session_and_latency):
        session, _ = session_and_latency
        import warnings

        workload = synthetic_opp_workload(40, seed=9)
        latency = DenseLatencyMatrix.from_topology(workload.topology)
        quiet = Nova(NovaConfig(seed=9)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=latency
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Reoptimizer(quiet, _warn=False)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        # _warn=False must not consume the session's single warning.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Reoptimizer(quiet)
        assert [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
