"""Public API surface: every exported name must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.topology",
    "repro.ncs",
    "repro.geometry",
    "repro.query",
    "repro.core",
    "repro.baselines",
    "repro.evaluation",
    "repro.spe",
    "repro.workloads",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} must declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_no_duplicate_exports():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        exported = package.__all__
        assert len(exported) == len(set(exported)), package_name
