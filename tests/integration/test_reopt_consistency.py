"""Long churn sequences keep the session consistent.

A randomized stress test of the re-optimizer: apply dozens of mixed events
and check the structural invariants after every step — every deployed
sub-replica references live nodes, the deployed replica set matches the
resolved plan, and the capacity ledger matches the placement.
"""

import numpy as np
import pytest

from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.core.reoptimizer import Reoptimizer
from repro.topology.dynamics import (
    AddSourceEvent,
    AddWorkerEvent,
    CapacityChangeEvent,
    CoordinateDriftEvent,
    DataRateChangeEvent,
    RemoveNodeEvent,
)
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload


def check_invariants(session):
    for sub in session.placement.sub_replicas:
        assert sub.node_id in session.topology, sub.node_id
        assert sub.node_id in session.cost_space, sub.node_id
    deployed = {s.replica_id for s in session.placement.sub_replicas}
    resolved = {r.replica_id for r in session.resolved.replicas}
    assert deployed == resolved
    # Ledger consistency: for every node, available = headroom - load.
    loads = session.placement.node_loads()
    ingestion = {}
    for op in session.plan.sources():
        ingestion[op.pinned_node] = ingestion.get(op.pinned_node, 0.0) + op.data_rate
    for node in session.topology.nodes():
        if node.node_id not in session.available:
            continue
        headroom = max(node.capacity - ingestion.get(node.node_id, 0.0), 0.0)
        expected = headroom - loads.get(node.node_id, 0.0)
        assert session.available[node.node_id] == pytest.approx(expected, abs=1e-6), (
            node.node_id
        )


@pytest.mark.parametrize("seed", [0, 1])
def test_churn_marathon(seed):
    workload = synthetic_opp_workload(100, seed=seed)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    session = Nova(NovaConfig(seed=seed)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    reoptimizer = Reoptimizer(session)
    rng = np.random.default_rng(seed)
    counter = 0

    def neighbors():
        ids = session.topology.node_ids
        chosen = rng.choice(len(ids), size=min(10, len(ids)), replace=False)
        return {ids[i]: float(rng.uniform(1.0, 100.0)) for i in chosen}

    check_invariants(session)
    for step in range(40):
        kind = rng.integers(0, 6)
        try:
            if kind == 0:
                counter += 1
                reoptimizer.apply(
                    AddWorkerEvent(f"w_extra{seed}_{counter}", float(rng.uniform(50, 300)), neighbors())
                )
            elif kind == 1:
                counter += 1
                rights = [
                    op.op_id for op in session.plan.sources()
                    if op.logical_stream == "right"
                ]
                if not rights:
                    continue
                reoptimizer.apply(
                    AddSourceEvent(
                        f"s_extra{seed}_{counter}",
                        float(rng.uniform(50, 200)),
                        float(rng.uniform(1, 150)),
                        "left",
                        rights[int(rng.integers(0, len(rights)))],
                        neighbors(),
                    )
                )
            elif kind == 2:
                sources = session.plan.sources()
                if len(sources) <= 4:
                    continue
                victim = sources[int(rng.integers(0, len(sources)))]
                reoptimizer.apply(RemoveNodeEvent(victim.op_id))
            elif kind == 3:
                subs = session.placement.sub_replicas
                if not subs:
                    continue
                host = subs[int(rng.integers(0, len(subs)))].node_id
                pinned = set(session.placement.pinned.values())
                if host in pinned:
                    continue
                reoptimizer.apply(RemoveNodeEvent(host))
            elif kind == 4:
                sources = session.plan.sources()
                victim = sources[int(rng.integers(0, len(sources)))]
                reoptimizer.apply(
                    DataRateChangeEvent(victim.op_id, float(rng.uniform(1, 200)))
                )
            else:
                workers = [
                    n.node_id for n in session.topology.nodes()
                    if n.node_id in session.available
                ]
                victim = workers[int(rng.integers(0, len(workers)))]
                if victim in session.plan:
                    continue
                reoptimizer.apply(
                    CapacityChangeEvent(victim, float(rng.uniform(10, 400)))
                )
        except Exception:
            raise AssertionError(f"event kind {kind} failed at step {step}")
        check_invariants(session)


def test_coordinate_drift_marathon():
    workload = synthetic_opp_workload(80, seed=3)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    session = Nova(NovaConfig(seed=3)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    reoptimizer = Reoptimizer(session)
    rng = np.random.default_rng(3)
    for _ in range(15):
        ids = session.topology.node_ids
        victim = ids[int(rng.integers(0, len(ids)))]
        sample_ids = [i for i in ids if i != victim][:12]
        neighbors = {nid: float(rng.uniform(1.0, 120.0)) for nid in sample_ids}
        reoptimizer.apply(CoordinateDriftEvent(victim, neighbors))
        for sub in session.placement.sub_replicas:
            assert sub.node_id in session.cost_space
