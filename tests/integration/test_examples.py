"""The examples must run end to end (they are part of the public API)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "environmental_monitoring.py",
        "smart_city_speed_limits.py",
        "dynamic_reoptimization.py",
    ],
)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 100  # produced a real report
