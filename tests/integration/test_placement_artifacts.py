"""Deployment artifacts: a serialized placement must deploy identically.

The operational workflow is optimize -> persist -> deploy; this test
checks that a placement surviving a JSON round-trip drives the simulator
to exactly the same outcome as the in-memory original.
"""

import pytest

from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.core.serialization import load_placement, save_placement, session_summary
from repro.spe.deployment import Deployment, SimulationConfig
from repro.workloads.debs import debs_workload


def test_roundtripped_placement_deploys_identically(tmp_path):
    workload = debs_workload(rate_hz=40.0, seed=6)
    session = Nova(NovaConfig(seed=6, sigma=0.6)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=workload.latency
    )
    path = tmp_path / "deployment.json"
    save_placement(session.placement, path)
    restored = load_placement(path)

    config = SimulationConfig(window_s=0.05, duration_s=3.0, seed=9)
    original_report = Deployment(
        workload.topology, workload.plan, session.placement,
        workload.latency.latency, config,
    ).run()
    restored_report = Deployment(
        workload.topology, workload.plan, restored,
        workload.latency.latency, config,
    ).run()

    assert restored_report.results_delivered == original_report.results_delivered
    assert restored_report.latency.mean == pytest.approx(original_report.latency.mean)
    assert restored_report.network_transfers == original_report.network_transfers


def test_session_summary_reflects_debs_structure():
    workload = debs_workload(rate_hz=40.0, seed=6)
    session = Nova(NovaConfig(seed=6, sigma=1.0)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=workload.latency
    )
    summary = session_summary(session)
    assert summary["joins"]["climate_join"]["pair_replicas"] == 4
    assert summary["sigma"] == 1.0
    assert len(summary["nodes"]) == len(session.placement.nodes_used())
