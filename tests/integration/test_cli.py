"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        from repro import __version__

        assert capsys.readouterr().out.strip() == __version__

    def test_figures_lists_all_targets(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        for figure in ("Figure 5", "Figure 12", "bench_ablation_sigma"):
            assert figure in output

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "sub-joins placed" in output
        assert "overloaded hosts %" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])


class TestPlanCommand:
    def test_plan_all_strategies_on_running_example(self, capsys):
        assert main(["plan", "running-example", "--strategy", "all"]) == 0
        output = capsys.readouterr().out
        from repro import available_strategies

        for name in available_strategies():
            assert name in output
        assert "Planner comparison" in output
        assert "session" in output

    def test_plan_single_strategy_prints_summary(self, capsys):
        assert main(["plan", "running-example", "--strategy", "cl-sf"]) == 0
        output = capsys.readouterr().out
        assert "PlanResult — cl-sf" in output
        assert "sub-joins placed" in output
        assert "live session" in output

    def test_plan_synthetic_nova(self, capsys):
        assert main(
            ["plan", "synthetic", "--nodes", "80", "--seed", "3", "--strategy", "nova"]
        ) == 0
        output = capsys.readouterr().out
        assert "supports_churn" in output

    def test_plan_unknown_strategy_rejected(self, capsys):
        assert main(["plan", "running-example", "--strategy", "quantum"]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_plan_unknown_workload_rejected(self, capsys):
        assert main(["plan", "atlantis"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestReplay:
    def write_trace(self, tmp_path, batches, nodes=120, seed=3):
        import json

        trace = {
            "version": 1,
            "workload": {"kind": "synthetic_opp", "nodes": nodes, "seed": seed},
            "batches": batches,
        }
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        return path

    def test_replay_prints_per_batch_delta_summaries(self, tmp_path, capsys):
        from repro.topology.dynamics import (
            AddWorkerEvent,
            DataRateChangeEvent,
            RemoveNodeEvent,
            event_to_dict,
        )

        neighbors = {f"n{i}": 10.0 for i in range(8)}
        path = self.write_trace(
            tmp_path,
            [
                {"events": [
                    event_to_dict(AddWorkerEvent("cli-w", 250.0, neighbors)),
                    event_to_dict(DataRateChangeEvent("n86", 90.0)),
                ]},
                {"events": [event_to_dict(RemoveNodeEvent("cli-w"))]},
            ],
        )
        deltas_path = tmp_path / "deltas.json"
        assert main(["replay", str(path), "--save-deltas", str(deltas_path)]) == 0
        output = capsys.readouterr().out
        assert "Churn replay" in output
        assert "events/s" in output
        assert "overload %" in output

        import json

        archived = json.loads(deltas_path.read_text())
        assert len(archived) == 2
        assert archived[0]["events_applied"] == 2
        from repro.core.serialization import plan_delta_from_dict

        rebuilt = plan_delta_from_dict(archived[0])
        assert rebuilt.timings.packing_passes == 1

    def test_replay_missing_trace(self, tmp_path):
        assert main(["replay", str(tmp_path / "nope.json")]) == 2

    def test_replay_invalid_batch_fails_cleanly(self, tmp_path, capsys):
        path = self.write_trace(
            tmp_path,
            [{"events": [{"type": "remove_node", "node_id": "ghost"}]}],
        )
        assert main(["replay", str(path)]) == 1
        assert "rolled back" in capsys.readouterr().err

    def test_replay_rejects_future_trace_version(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"version": 99, "batches": []}))
        assert main(["replay", str(path)]) == 2
