"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        from repro import __version__

        assert capsys.readouterr().out.strip() == __version__

    def test_figures_lists_all_targets(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        for figure in ("Figure 5", "Figure 12", "bench_ablation_sigma"):
            assert figure in output

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "sub-joins placed" in output
        assert "overloaded hosts %" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])
