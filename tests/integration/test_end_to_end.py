"""End-to-end integration: the paper's headline orderings must hold.

These tests run the full pipeline — workload generation, optimization,
baselines, evaluation, and simulation — and assert the *shape* of the
paper's results: who wins, and roughly by how much.
"""

import pytest

from repro.baselines.registry import available_baselines, make_baseline
from repro.baselines.top_c import TopCPlacement
from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.evaluation.latency import latency_stats, matrix_distance, p90_delta_vs_direct
from repro.evaluation.overload import overload_percentage
from repro.spe.deployment import Deployment, SimulationConfig
from repro.spe.stress import stress_sources
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.debs import debs_workload
from repro.workloads.synthetic import synthetic_opp_workload


@pytest.fixture(scope="module")
def synthetic():
    workload = synthetic_opp_workload(300, seed=11)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    session = Nova(NovaConfig(seed=11)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    baselines = {
        name: make_baseline(name).place(
            workload.topology, workload.plan, workload.matrix, latency
        )
        for name in available_baselines()
    }
    return workload, latency, session, baselines


class TestOverloadOrdering:
    """Figure 6 shape: Nova 0%, sink 100%, WSN methods worst baselines."""

    def test_nova_zero_overload(self, synthetic):
        workload, _, session, _ = synthetic
        assert overload_percentage(session.placement, workload.topology) == 0.0

    def test_sink_based_hundred_percent(self, synthetic):
        workload, _, _, baselines = synthetic
        assert overload_percentage(baselines["sink-based"], workload.topology) == 100.0

    def test_topc_best_baseline(self, synthetic):
        workload, _, _, baselines = synthetic
        values = {
            name: overload_percentage(placement, workload.topology)
            for name, placement in baselines.items()
        }
        assert values["top-c"] <= min(
            values["source-based"], values["tree"], values["cl-sf"], values["cl-tree-sf"]
        )

    def test_source_based_resource_agnostic(self, synthetic):
        workload, _, _, baselines = synthetic
        assert overload_percentage(baselines["source-based"], workload.topology) > 20.0


class TestPlacementQuality:
    """Figure 7 shape: Nova's 90P delta over the direct-transmission bound
    is small and far below the tree-based methods."""

    def test_nova_near_lower_bound(self, synthetic):
        workload, latency, session, _ = synthetic
        delta = p90_delta_vs_direct(session.placement, matrix_distance(latency))
        bound_stats = latency_stats(session.placement, matrix_distance(latency))
        assert delta < 0.8 * bound_stats.p90

    def test_nova_beats_tree_methods(self, synthetic):
        """Tree baselines route multi-hop over their MST, so their real
        latencies are evaluated along the tree (Section 4.4)."""
        from repro.baselines.tree import TreePlacement
        from repro.evaluation.latency import tree_route_distance

        workload, latency, session, _ = synthetic
        strategy = TreePlacement()
        tree_placement = strategy.place(
            workload.topology, workload.plan, workload.matrix, latency
        )
        import numpy as np

        from repro.evaluation.latency import (
            direct_transmission_latencies,
            placement_latencies,
        )

        route = tree_route_distance(
            strategy.last_parents_by_root, latency, root_of=lambda _: workload.sink_id
        )
        nova_delta = p90_delta_vs_direct(session.placement, matrix_distance(latency))
        # Tree achieves multi-hop routes; the bound stays straight-line.
        achieved = placement_latencies(tree_placement, route)
        bound = direct_transmission_latencies(tree_placement, matrix_distance(latency))
        tree_delta = float(np.percentile(achieved, 90) - np.percentile(bound, 90))
        assert nova_delta < tree_delta


class TestEndToEndSimulation:
    """Figure 11/12 shape: Nova has the highest throughput and the lowest
    latency, stays robust under stress; sink-based is the floor."""

    @pytest.fixture(scope="class")
    def reports(self):
        workload = debs_workload(rate_hz=80.0, seed=1)
        session = Nova(NovaConfig(seed=1, sigma=1.0)).optimize(
            workload.topology, workload.plan, workload.matrix, latency=workload.latency
        )
        placements = {
            "nova": session.placement,
            "sink-based": make_baseline("sink-based").place(
                workload.topology, workload.plan, workload.matrix, workload.latency
            ),
            "source-based": make_baseline("source-based").place(
                workload.topology, workload.plan, workload.matrix, workload.latency
            ),
            "top-c": TopCPlacement(decrement=False).place(
                workload.topology, workload.plan, workload.matrix, workload.latency
            ),
        }

        def run(placement, stress=None):
            config = SimulationConfig(
                window_s=0.0125,
                duration_s=10.0,
                seed=1,
                stress_factors=stress or {},
            )
            return Deployment(
                workload.topology, workload.plan, placement,
                workload.latency.latency, config,
            ).run()

        stress = stress_sources(workload.topology, 0.7)
        return {
            "normal": {name: run(p) for name, p in placements.items()},
            "stressed": {name: run(p, stress) for name, p in placements.items()},
        }

    def test_nova_highest_throughput(self, reports):
        normal = reports["normal"]
        for name, report in normal.items():
            if name != "nova":
                assert normal["nova"].results_delivered > report.results_delivered

    def test_nova_factor_over_sink(self, reports):
        """Paper: 13.4x more tuples than sink-based; require >= 4x."""
        normal = reports["normal"]
        assert (
            normal["nova"].results_delivered
            >= 4 * normal["sink-based"].results_delivered
        )

    def test_nova_lowest_mean_latency(self, reports):
        normal = reports["normal"]
        for name, report in normal.items():
            if name != "nova" and report.results_delivered > 0:
                assert normal["nova"].latency.mean < report.latency.mean

    def test_nova_latency_factor(self, reports):
        """Paper: 4.6-14.4x lower mean latency; require >= 3x vs sink."""
        normal = reports["normal"]
        assert normal["sink-based"].latency.mean > 3 * normal["nova"].latency.mean

    def test_nova_robust_under_stress(self, reports):
        """Paper: mean rises 8 -> 13 ms under stress; require < 3x."""
        assert (
            reports["stressed"]["nova"].latency.mean
            < 3 * reports["normal"]["nova"].latency.mean
        )

    def test_stress_gap_versus_baselines(self, reports):
        """Under stress Nova's tail stays bounded while the static
        single-node approaches blow up (paper: 39x at the 99.99th)."""
        stressed = reports["stressed"]
        assert stressed["top-c"].latency.p9999 > 5 * stressed["nova"].latency.p9999

    def test_no_drops_for_nova(self, reports):
        assert reports["normal"]["nova"].results_dropped_late == 0
