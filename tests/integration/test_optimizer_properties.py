"""End-level properties of the Nova optimizer over random workloads.

For arbitrary topology sizes, seeds, and sigma values, an optimization
must produce a *complete* and *consistent* placement: every join pair of
the matrix deployed, every sub-join on a live node, pinned operators
untouched, and the capacity constraint honoured whenever the optimizer
did not explicitly flag accepted overload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NovaConfig
from repro.core.optimizer import Nova
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.synthetic import synthetic_opp_workload


@given(
    st.integers(min_value=20, max_value=120),
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=20, deadline=None)
def test_property_optimizer_produces_complete_consistent_placements(
    n_nodes, seed, sigma
):
    workload = synthetic_opp_workload(n_nodes, seed=seed)
    latency = DenseLatencyMatrix.from_topology(workload.topology)
    session = Nova(NovaConfig(seed=seed, sigma=sigma)).optimize(
        workload.topology, workload.plan, workload.matrix, latency=latency
    )
    placement = session.placement

    # Completeness: every matrix pair has at least one deployed sub-join.
    deployed_replicas = {sub.replica_id for sub in placement.sub_replicas}
    assert len(deployed_replicas) == workload.matrix.num_pairs()

    # Liveness: every sub-join runs on a topology node.
    for sub in placement.sub_replicas:
        assert sub.node_id in workload.topology

    # Pins: sources and sinks stay on their nodes.
    for operator in workload.plan.operators():
        if operator.is_pinned:
            assert placement.pinned[operator.op_id] == operator.pinned_node

    # Capacity: without the overload flag, no hosting node exceeds the
    # headroom left after its own ingestion.
    if not placement.overload_accepted:
        ingestion = {}
        for op in workload.plan.sources():
            ingestion[op.pinned_node] = ingestion.get(op.pinned_node, 0.0) + op.data_rate
        for node_id, load in placement.node_loads().items():
            node = workload.topology.node(node_id)
            headroom = max(node.capacity - ingestion.get(node_id, 0.0), 0.0)
            assert load <= headroom + 1e-6, node_id

    # Virtual positions exist for every deployed replica and are finite.
    for replica_id in deployed_replicas:
        position = placement.virtual_positions[replica_id]
        assert np.all(np.isfinite(position))
