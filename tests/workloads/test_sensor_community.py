"""Synthetic Sensor.Community readings."""

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.workloads.sensor_community import (
    Anomaly,
    SensorCommunityGenerator,
    detect_regional_anomalies,
)


class TestGenerator:
    def test_reading_fields(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        reading = generator.reading("s1", "r1", "pressure", 0.0)
        assert reading.kind == "pressure"
        assert 950.0 < reading.value < 1070.0

    def test_humidity_plausible(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        values = [
            generator.reading("s1", "r1", "humidity", t).value for t in range(100)
        ]
        assert 0.0 < np.mean(values) < 100.0

    def test_unknown_kind_rejected(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        with pytest.raises(WorkloadError):
            generator.reading("s1", "r1", "co2", 0.0)

    def test_empty_regions_rejected(self):
        with pytest.raises(WorkloadError):
            SensorCommunityGenerator([])

    def test_stream_rate_and_duration(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        readings = list(generator.stream("s1", "r1", "pressure", rate_hz=10.0, duration_s=2.0))
        assert len(readings) == 20
        assert readings[1].timestamp_s - readings[0].timestamp_s == pytest.approx(0.1)

    def test_stream_invalid_rate(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        with pytest.raises(WorkloadError):
            list(generator.stream("s1", "r1", "pressure", rate_hz=0.0, duration_s=1.0))


class TestAnomalies:
    def test_injected_step_visible(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        generator.inject_anomaly(
            Anomaly(region="r1", kind="pressure", start_s=10.0, end_s=20.0, delta=-30.0)
        )
        normal = generator.reading("s1", "r1", "pressure", 5.0).value
        anomalous = generator.reading("s1", "r1", "pressure", 15.0).value
        assert anomalous < normal - 15.0

    def test_anomaly_scoped_to_region_and_kind(self):
        anomaly = Anomaly("r1", "pressure", 0.0, 10.0, -30.0)
        assert anomaly.applies("pressure", "r1", 5.0)
        assert not anomaly.applies("humidity", "r1", 5.0)
        assert not anomaly.applies("pressure", "r2", 5.0)
        assert not anomaly.applies("pressure", "r1", 15.0)

    def test_unknown_region_rejected(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        with pytest.raises(WorkloadError):
            generator.inject_anomaly(Anomaly("ghost", "pressure", 0, 1, -1))


class TestDetection:
    def test_detects_storm_signature(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        generator.inject_anomaly(Anomaly("r1", "pressure", 0.0, 100.0, -30.0))
        generator.inject_anomaly(Anomaly("r1", "humidity", 0.0, 100.0, +30.0))
        pairs = [
            (
                generator.reading("p", "r1", "pressure", t),
                generator.reading("h", "r1", "humidity", t),
            )
            for t in range(20)
        ]
        alerts = detect_regional_anomalies(pairs)
        assert alerts
        assert alerts[0][0] == "r1"

    def test_quiet_weather_no_alerts(self):
        generator = SensorCommunityGenerator(["r1"], seed=0)
        pairs = [
            (
                generator.reading("p", "r1", "pressure", t),
                generator.reading("h", "r1", "humidity", t),
            )
            for t in range(20)
        ]
        assert detect_regional_anomalies(pairs) == []
