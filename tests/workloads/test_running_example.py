"""The Figure 2 running example."""

import pytest

from repro.workloads.running_example import build_running_example


@pytest.fixture(scope="module")
def example():
    return build_running_example()


class TestStructure:
    def test_six_sources_two_regions(self, example):
        assert len(example.plan.sources()) == 6
        regions = {example.topology.node(n).region for n in ("t1", "t2", "w1")}
        assert regions == {"region1"}

    def test_figure_capacities(self, example):
        for name, capacity in [("A", 55.0), ("B", 40.0), ("C", 40.0), ("F", 20.0), ("G", 200.0)]:
            assert example.topology.node(name).capacity == capacity
        assert example.topology.node("sink").capacity == 20.0

    def test_join_decomposition_matches_paper(self, example):
        """T x W decomposes into (t1xw1) u (t2xw1) u (t3xw2) u (t4xw2)."""
        assert set(example.matrix.pairs()) == {
            ("t1", "w1"),
            ("t2", "w1"),
            ("t3", "w2"),
            ("t4", "w2"),
        }

    def test_narrative_latencies(self, example):
        """Quantities the Section 3.2 text states explicitly."""
        assert example.latency.latency("t1", "base1") == pytest.approx(10.0)
        # A[t1, C] = 60 (10 to the base station, 50 to C).
        assert example.latency.latency("t1", "C") == pytest.approx(60.0)
        # A[t1, sink] = 110.
        assert example.latency.latency("t1", "sink") == pytest.approx(110.0)

    def test_region2_farther_than_region1(self, example):
        """The narrative has region-2 paths to the cloud longer than
        region-1 paths (155 vs 130 ms)."""
        region1_to_cloud = example.latency.latency("t1", "E")
        region2_to_cloud = example.latency.latency("t3", "E")
        assert region2_to_cloud > region1_to_cloud - 30.0

    def test_plan_validates(self, example):
        example.plan.validate()

    def test_sources_emit_25hz(self, example):
        assert all(op.data_rate == 25.0 for op in example.plan.sources())
