"""The DEBS 2021-style workload and cluster testbed."""

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.topology.model import NodeRole
from repro.workloads.debs import cluster_testbed, debs_workload


class TestClusterTestbed:
    def test_fourteen_nodes_default(self):
        topology, latency = cluster_testbed(seed=0)
        assert len(topology) == 14  # 1 sink + 8 sources + 5 workers
        assert len(topology.sources()) == 8
        assert len(topology.workers()) == 5
        assert len(latency) == 14

    def test_latencies_in_configured_range(self):
        _, latency = cluster_testbed(latency_range_ms=(5.0, 80.0), seed=0)
        off_diagonal = latency.matrix[~np.eye(14, dtype=bool)]
        assert off_diagonal.min() >= 5.0
        assert off_diagonal.max() <= 80.0

    def test_too_few_sources_rejected(self):
        with pytest.raises(WorkloadError):
            cluster_testbed(n_sources=1)


class TestDebsWorkload:
    def test_four_region_structure(self):
        workload = debs_workload(seed=0)
        assert len(workload.regions) == 4
        assert len(workload.plan.sources()) == 8
        assert workload.matrix.num_pairs() == 4  # one join pair per region
        workload.plan.validate()

    def test_pairs_respect_regions(self):
        workload = debs_workload(seed=0)
        for left, right in workload.matrix.pairs():
            assert left.split("_")[1] == right.split("_")[1]

    def test_region_tags_on_nodes(self):
        workload = debs_workload(seed=0)
        for op in workload.plan.sources():
            node = workload.topology.node(op.pinned_node)
            assert node.region in workload.regions

    def test_custom_rate(self):
        workload = debs_workload(rate_hz=123.0, seed=0)
        assert all(op.data_rate == 123.0 for op in workload.plan.sources())

    def test_custom_region_count(self):
        workload = debs_workload(n_regions=2, seed=0)
        assert workload.matrix.num_pairs() == 2

    def test_insufficient_sources_rejected(self):
        topology, latency = cluster_testbed(n_sources=4, seed=0)
        with pytest.raises(WorkloadError):
            debs_workload(n_regions=4, topology=topology, latency=latency)

    def test_invalid_region_count(self):
        with pytest.raises(WorkloadError):
            debs_workload(n_regions=0)
