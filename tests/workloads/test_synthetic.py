"""The Section 4.1 synthetic OPP workload."""

import pytest

from repro.common.errors import WorkloadError
from repro.topology.generators import heterogeneity_levels
from repro.topology.model import NodeRole, Topology, Node
from repro.workloads.synthetic import (
    assign_workload_roles,
    heterogeneity_sweep,
    synthetic_opp_workload,
)


class TestRoleAssignment:
    def test_sixty_forty_split(self):
        workload = synthetic_opp_workload(100, seed=0)
        sources = workload.topology.sources()
        assert len(sources) == 60
        assert len(workload.topology.sinks()) == 1

    def test_matrix_one_entry_per_row(self):
        """Each source joins exactly one partner (Section 4.1)."""
        workload = synthetic_opp_workload(100, seed=0)
        matrix = workload.matrix
        assert matrix.num_pairs() == len(matrix.left_ids)
        for left in matrix.left_ids:
            assert len([p for p in matrix.pairs() if p[0] == left]) == 1

    def test_rates_in_range(self):
        workload = synthetic_opp_workload(80, seed=1)
        for op in workload.plan.sources():
            assert 1.0 <= op.data_rate <= 200.0

    def test_plan_validates(self):
        workload = synthetic_opp_workload(50, seed=2)
        workload.plan.validate()

    def test_sink_is_not_a_source(self):
        workload = synthetic_opp_workload(60, seed=3)
        source_nodes = {op.pinned_node for op in workload.plan.sources()}
        assert workload.sink_id not in source_nodes

    def test_too_small_topology_rejected(self):
        topology = Topology()
        for i in range(3):
            topology.add_node(Node(f"n{i}", 1.0))
        with pytest.raises(WorkloadError):
            assign_workload_roles(topology)

    def test_roles_on_existing_topology(self):
        from repro.topology.testbeds import load_testbed

        testbed = load_testbed("planetlab", seed=0)
        workload = assign_workload_roles(testbed.topology, seed=1)
        assert len(workload.topology.sources()) > 100
        workload.plan.validate()

    def test_total_demand(self):
        workload = synthetic_opp_workload(40, seed=4)
        assert workload.total_demand() == pytest.approx(
            sum(op.data_rate for op in workload.plan.sources())
        )

    def test_deterministic(self):
        a = synthetic_opp_workload(50, seed=9)
        b = synthetic_opp_workload(50, seed=9)
        assert [op.data_rate for op in a.plan.sources()] == [
            op.data_rate for op in b.plan.sources()
        ]
        assert list(a.matrix.pairs()) == list(b.matrix.pairs())


class TestHeterogeneitySweep:
    def test_total_capacity_constant_across_levels(self):
        instances = heterogeneity_sweep(100, heterogeneity_levels(), seed=0)
        totals = [w.topology.total_capacity() for _, w in instances]
        for total in totals:
            assert total == pytest.approx(totals[0], rel=0.1)

    def test_cv_spans_range(self):
        instances = heterogeneity_sweep(200, heterogeneity_levels(), seed=0)
        cvs = [w.capacity_cv for _, w in instances]
        assert max(cvs) > 2 * min(cvs)
