"""Vivaldi network coordinates."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError
from repro.ncs.accuracy import embedding_accuracy
from repro.ncs.vivaldi import (
    VivaldiConfig,
    VivaldiEmbedding,
    neighbor_rtts,
    sample_neighbor_sets,
)
from repro.topology.latency import CoordinateLatencyModel, DenseLatencyMatrix


def euclidean_matrix(n=60, seed=0, scale=100.0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, scale, (n, 2))
    return DenseLatencyMatrix.from_coordinates([f"n{i}" for i in range(n)], coords)


class TestConfig:
    def test_defaults(self):
        config = VivaldiConfig()
        assert config.dimensions == 2
        assert config.neighbors == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimensions": 0},
            {"neighbors": 0},
            {"rounds": 0},
            {"ce": 0.0},
            {"cc": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            VivaldiConfig(**kwargs)


class TestNeighborSets:
    def test_no_self_selection(self):
        sets = sample_neighbor_sets(50, 10, np.random.default_rng(0))
        for i in range(50):
            assert i not in sets[i]

    def test_clamped_to_n_minus_one(self):
        sets = sample_neighbor_sets(5, 100, np.random.default_rng(0))
        assert sets.shape == (5, 4)
        for i in range(5):
            assert len(set(sets[i].tolist())) == 4

    def test_too_few_nodes(self):
        with pytest.raises(EmbeddingError):
            sample_neighbor_sets(1, 3, np.random.default_rng(0))


class TestNeighborRtts:
    def test_dense_fast_path(self):
        matrix = euclidean_matrix(10)
        sets = sample_neighbor_sets(10, 3, np.random.default_rng(0))
        rtts = neighbor_rtts(matrix, matrix.ids, sets)
        ids = matrix.ids
        assert rtts[2, 1] == pytest.approx(matrix.latency(ids[2], ids[int(sets[2, 1])]))

    def test_coordinate_fast_path(self):
        rng = np.random.default_rng(1)
        coords = rng.uniform(0, 50, (12, 2))
        model = CoordinateLatencyModel([f"n{i}" for i in range(12)], coords)
        sets = sample_neighbor_sets(12, 4, rng)
        rtts = neighbor_rtts(model, model.ids, sets)
        assert rtts[0, 0] == pytest.approx(
            model.latency("n0", f"n{int(sets[0, 0])}")
        )


class TestEmbedding:
    def test_recovers_euclidean_structure(self):
        """On a matrix that IS Euclidean, Vivaldi should reach low error."""
        matrix = euclidean_matrix(80, seed=2)
        result = VivaldiEmbedding(VivaldiConfig(neighbors=16, rounds=60), seed=0).embed(matrix)
        report = embedding_accuracy(result.coordinates, matrix)
        median_latency = float(np.median(matrix.matrix))
        assert report.mae_ms < 0.35 * median_latency

    def test_more_neighbors_do_not_hurt_much(self):
        matrix = euclidean_matrix(60, seed=4)
        small = VivaldiEmbedding(VivaldiConfig(neighbors=4, rounds=40), seed=0).embed(matrix)
        large = VivaldiEmbedding(VivaldiConfig(neighbors=24, rounds=40), seed=0).embed(matrix)
        err_small = embedding_accuracy(small.coordinates, matrix).mae_ms
        err_large = embedding_accuracy(large.coordinates, matrix).mae_ms
        assert err_large <= err_small * 1.5

    def test_result_shapes(self):
        matrix = euclidean_matrix(20)
        result = VivaldiEmbedding(seed=0).embed(matrix)
        assert result.coordinates.shape == (20, 2)
        assert result.errors.shape == (20,)
        assert result.ids == matrix.ids

    def test_single_node(self):
        matrix = DenseLatencyMatrix(["only"], np.zeros((1, 1)))
        result = VivaldiEmbedding(seed=0).embed(matrix)
        assert result.coordinates.shape == (1, 2)

    def test_coords_of_and_mapping(self):
        matrix = euclidean_matrix(10)
        result = VivaldiEmbedding(seed=0).embed(matrix)
        mapping = result.as_mapping()
        assert np.allclose(mapping["n3"], result.coords_of("n3"))

    def test_deterministic_given_seed(self):
        matrix = euclidean_matrix(25)
        a = VivaldiEmbedding(seed=9).embed(matrix)
        b = VivaldiEmbedding(seed=9).embed(matrix)
        assert np.allclose(a.coordinates, b.coordinates)


class TestPlaceNewNode:
    def test_lands_near_true_position(self):
        """A node measured against embedded neighbours should land where
        its latencies predict."""
        matrix = euclidean_matrix(60, seed=5)
        embedding = VivaldiEmbedding(VivaldiConfig(neighbors=16, rounds=60), seed=0)
        result = embedding.embed(matrix)
        # Use node 0's real latencies to place a "new" node at its spot.
        neighbor_ids = matrix.ids[1:21]
        neighbor_coords = np.vstack([result.coords_of(nid) for nid in neighbor_ids])
        rtts = np.array([matrix.latency("n0", nid) for nid in neighbor_ids])
        position = embedding.place_new_node(neighbor_coords, rtts)
        predicted = np.linalg.norm(neighbor_coords - position, axis=1)
        mae = np.abs(predicted - rtts).mean()
        assert mae < 0.5 * rtts.mean()

    def test_requires_neighbors(self):
        embedding = VivaldiEmbedding(seed=0)
        with pytest.raises(EmbeddingError):
            embedding.place_new_node(np.zeros((0, 2)), np.zeros(0))

    def test_misaligned_inputs(self):
        embedding = VivaldiEmbedding(seed=0)
        with pytest.raises(EmbeddingError):
            embedding.place_new_node(np.zeros((3, 2)), np.zeros(2))
