"""Embedding-accuracy evaluation (the NCSIM-style study)."""

import numpy as np
import pytest

from repro.ncs.accuracy import embedding_accuracy, mae_vs_neighbors, predicted_matrix
from repro.topology.latency import DenseLatencyMatrix


def euclidean_matrix(n=40, seed=0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 100, (n, 2))
    return DenseLatencyMatrix.from_coordinates([f"n{i}" for i in range(n)], coords), coords


class TestPredictedMatrix:
    def test_shape_and_symmetry(self):
        _, coords = euclidean_matrix(10)
        predicted = predicted_matrix(coords)
        assert predicted.shape == (10, 10)
        assert np.allclose(predicted, predicted.T)
        assert np.allclose(np.diag(predicted), 0.0)


class TestEmbeddingAccuracy:
    def test_perfect_embedding(self):
        matrix, coords = euclidean_matrix(20, seed=1)
        report = embedding_accuracy(coords, matrix)
        assert report.mae_ms < 1e-9
        assert report.stress < 1e-9

    def test_shifted_embedding_invariant(self):
        """Translations do not change pairwise distances."""
        matrix, coords = euclidean_matrix(20, seed=2)
        report = embedding_accuracy(coords + 1000.0, matrix)
        assert report.mae_ms < 1e-6

    def test_scaled_embedding_has_error(self):
        matrix, coords = euclidean_matrix(20, seed=3)
        report = embedding_accuracy(coords * 1.5, matrix)
        assert report.mae_ms > 0.0
        assert report.median_relative_error == pytest.approx(0.5, abs=0.05)


class TestMaeVsNeighbors:
    def test_converges_with_neighborhood_size(self):
        """The paper's m-selection study: error converges quickly and gains
        beyond a small m are negligible."""
        matrix, _ = euclidean_matrix(60, seed=4)
        results = mae_vs_neighbors(matrix, [2, 8, 24], rounds=40, seed=0)
        assert set(results) == {2, 8, 24}
        # m=24 should not be dramatically worse than m=8 (convergence).
        assert results[24] <= results[8] * 1.6

    def test_returns_positive_errors(self):
        matrix, _ = euclidean_matrix(30, seed=5)
        results = mae_vs_neighbors(matrix, [4], rounds=20, seed=0)
        assert results[4] >= 0.0
