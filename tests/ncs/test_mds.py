"""Classical MDS and SMACOF."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError
from repro.ncs.mds import classical_mds, smacof_mds, stress_value
from repro.topology.latency import DenseLatencyMatrix


def euclidean_matrix(n=30, seed=0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 100, (n, 2))
    return (
        DenseLatencyMatrix.from_coordinates([f"n{i}" for i in range(n)], coords),
        coords,
    )


class TestClassicalMds:
    def test_exact_on_euclidean_input(self):
        matrix, _ = euclidean_matrix()
        result = classical_mds(matrix, dimensions=2)
        assert result.stress < 1e-6

    def test_distances_preserved(self):
        matrix, _ = euclidean_matrix(20, seed=1)
        result = classical_mds(matrix)
        induced = np.linalg.norm(
            result.coordinates[:, None, :] - result.coordinates[None, :, :], axis=2
        )
        assert np.allclose(induced, matrix.matrix, atol=1e-6)

    def test_higher_dims_padded(self):
        matrix, _ = euclidean_matrix(10)
        result = classical_mds(matrix, dimensions=5)
        assert result.coordinates.shape == (10, 5)

    def test_non_euclidean_input_low_rank_approx(self):
        matrix, _ = euclidean_matrix(25, seed=2)
        perturbed = matrix.inject_tivs(0.3, seed=0)
        result = classical_mds(perturbed, dimensions=2)
        assert 0.0 < result.stress < 1.0

    def test_invalid_dimensions(self):
        matrix, _ = euclidean_matrix(5)
        with pytest.raises(EmbeddingError):
            classical_mds(matrix, dimensions=0)

    def test_coords_of(self):
        matrix, _ = euclidean_matrix(8)
        result = classical_mds(matrix)
        assert result.coords_of("n3").shape == (2,)


class TestSmacof:
    def test_improves_or_matches_classical_on_tiv_input(self):
        matrix, _ = euclidean_matrix(25, seed=3)
        perturbed = matrix.inject_tivs(0.2, seed=1)
        classical = classical_mds(perturbed)
        smacof = smacof_mds(perturbed, max_iterations=100, seed=0)
        assert smacof.stress <= classical.stress + 1e-9

    def test_exact_input_stays_exact(self):
        matrix, _ = euclidean_matrix(15, seed=4)
        result = smacof_mds(matrix, seed=0)
        assert result.stress < 1e-4

    def test_initial_coordinates_accepted(self):
        matrix, coords = euclidean_matrix(12, seed=5)
        result = smacof_mds(matrix, initial=coords, seed=0)
        assert result.stress < 1e-6

    def test_initial_wrong_shape_raises(self):
        matrix, _ = euclidean_matrix(5)
        with pytest.raises(EmbeddingError):
            smacof_mds(matrix, initial=np.zeros((3, 2)))


class TestStressValue:
    def test_zero_for_perfect_embedding(self):
        matrix, coords = euclidean_matrix(10, seed=6)
        assert stress_value(coords, matrix.matrix) < 1e-9

    def test_positive_for_wrong_embedding(self):
        matrix, coords = euclidean_matrix(10, seed=7)
        assert stress_value(coords * 2.0, matrix.matrix) > 0.1

    def test_zero_target(self):
        assert stress_value(np.zeros((3, 2)), np.zeros((3, 3))) == 0.0
