"""Sink-based, source-based, and top-c baselines."""

import pytest

from repro.baselines.sink_based import SinkBasedPlacement
from repro.baselines.source_based import SourceBasedPlacement
from repro.baselines.top_c import TopCPlacement
from repro.evaluation.overload import overload_percentage
from repro.workloads.running_example import build_running_example


@pytest.fixture(scope="module")
def example():
    return build_running_example()


class TestSinkBased:
    def test_everything_at_sink(self, example):
        placement = SinkBasedPlacement().place(example.topology, example.plan, example.matrix)
        assert placement.nodes_used() == ["sink"]
        assert placement.replica_count() == 4

    def test_sink_overloaded(self, example):
        placement = SinkBasedPlacement().place(example.topology, example.plan, example.matrix)
        # 4 pairs x 50 tuples/s = 200 demand on a 20-capacity sink.
        assert overload_percentage(placement, example.topology) == 100.0

    def test_pinned_recorded(self, example):
        placement = SinkBasedPlacement().place(example.topology, example.plan, example.matrix)
        assert placement.pinned["t1"] == "t1"


class TestSourceBased:
    def test_placed_on_higher_rate_source(self, example):
        placement = SourceBasedPlacement().place(example.topology, example.plan, example.matrix)
        # All sources emit 25 Hz, ties go to the left source.
        hosts = {s.node_id for s in placement.sub_replicas}
        assert hosts <= {"t1", "t2", "t3", "t4"}

    def test_rate_tiebreak(self):
        from repro.query.join_matrix import JoinMatrix
        from repro.query.plan import LogicalPlan
        from repro.topology.model import Node, Topology

        topology = Topology()
        for name in ("a", "b", "k"):
            topology.add_node(Node(name, 100.0))
        plan = LogicalPlan()
        plan.add_source("sa", node="a", rate=5.0, logical_stream="L")
        plan.add_source("sb", node="b", rate=50.0, logical_stream="R")
        plan.add_join("j", left="L", right="R")
        plan.add_sink("k", node="k", inputs=["j.out"])
        matrix = JoinMatrix.dense(["sa"], ["sb"])
        placement = SourceBasedPlacement().place(topology, plan, matrix)
        assert placement.sub_replicas[0].node_id == "b"  # higher-rate side


class TestTopC:
    def test_decrementing_spreads_over_best_nodes(self, example):
        placement = TopCPlacement().place(example.topology, example.plan, example.matrix)
        hosts = {s.node_id for s in placement.sub_replicas}
        # E (500) and G (200) are the two largest; all four pairs (50 each)
        # fit E before its availability drops below G.
        assert "E" in hosts

    def test_static_mode_single_node(self, example):
        placement = TopCPlacement(decrement=False).place(
            example.topology, example.plan, example.matrix
        )
        assert placement.nodes_used() == ["E"]

    def test_decrement_mode_tracks_availability(self):
        from repro.query.join_matrix import JoinMatrix
        from repro.query.plan import LogicalPlan
        from repro.topology.model import Node, Topology

        topology = Topology()
        topology.add_node(Node("big", 100.0))
        topology.add_node(Node("mid", 90.0))
        topology.add_node(Node("k", 1.0))
        plan = LogicalPlan()
        for i in range(3):
            plan.add_source(f"l{i}", node="big" if i == 0 else "mid", rate=30.0, logical_stream="L")
        plan.add_source("r0", node="mid", rate=30.0, logical_stream="R")
        plan.add_join("j", left="L", right="R")
        plan.add_sink("k", node="k", inputs=["j.out"])
        matrix = JoinMatrix(["l0", "l1", "l2"], ["r0"])
        for left in ("l0", "l1", "l2"):
            matrix.allow(left, "r0")
        placement = TopCPlacement().place(topology, plan, matrix)
        hosts = [s.node_id for s in placement.sub_replicas]
        # First pair goes to big (100), dropping it to 40; second to mid
        # (90 -> 30); third back to big (40).
        assert hosts == ["big", "mid", "big"]
