"""LEACH-SF fuzzy clustering."""

import numpy as np
import pytest

from repro.baselines.leach_sf import Clustering, fuzzy_c_means, leach_sf_clustering
from repro.common.errors import OptimizationError


def blob_points(seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [
            rng.normal((0, 0), 0.5, (20, 2)),
            rng.normal((20, 0), 0.5, (20, 2)),
            rng.normal((0, 20), 0.5, (20, 2)),
        ]
    )


class TestFuzzyCMeans:
    def test_memberships_are_a_distribution(self):
        points = blob_points()
        _, memberships = fuzzy_c_means(points, 3, seed=0)
        assert memberships.shape == (60, 3)
        assert np.allclose(memberships.sum(axis=1), 1.0)
        assert (memberships >= 0).all()

    def test_recovers_separated_blobs(self):
        points = blob_points()
        _, memberships = fuzzy_c_means(points, 3, seed=0)
        labels = memberships.argmax(axis=1)
        # Each true blob should be dominated by a single cluster label.
        for start in (0, 20, 40):
            block = labels[start : start + 20]
            dominant = np.bincount(block).max()
            assert dominant >= 18

    def test_centers_near_blob_means(self):
        points = blob_points()
        centers, _ = fuzzy_c_means(points, 3, seed=0)
        true_means = np.array([[0, 0], [20, 0], [0, 20]], dtype=float)
        for mean in true_means:
            assert np.linalg.norm(centers - mean, axis=1).min() < 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clusters": 0},
            {"n_clusters": 100},
            {"fuzzifier": 1.0},
        ],
    )
    def test_invalid_params(self, kwargs):
        points = blob_points()
        with pytest.raises(OptimizationError):
            fuzzy_c_means(points, **{"n_clusters": 3, **kwargs})

    def test_empty_points(self):
        with pytest.raises(OptimizationError):
            fuzzy_c_means(np.zeros((0, 2)), 1)

    def test_single_cluster(self):
        points = blob_points()
        centers, memberships = fuzzy_c_means(points, 1, seed=0)
        assert centers.shape == (1, 2)
        assert np.allclose(memberships, 1.0)


class TestLeachSfClustering:
    def coordinates(self, seed=0):
        points = blob_points(seed)
        return {f"n{i}": points[i] for i in range(len(points))}

    def test_heads_are_members_of_their_cluster(self):
        clustering = leach_sf_clustering(self.coordinates(), n_clusters=3, seed=0)
        for cluster, head in clustering.heads.items():
            assert clustering.cluster_of(head) == cluster

    def test_every_label_has_head(self):
        clustering = leach_sf_clustering(self.coordinates(), n_clusters=3, seed=0)
        assert set(np.unique(clustering.labels).tolist()) == set(clustering.heads)

    def test_default_cluster_count_sqrt_n(self):
        clustering = leach_sf_clustering(self.coordinates(), seed=0)
        assert len(clustering.heads) <= 8  # ~sqrt(60)

    def test_head_of_and_members(self):
        clustering = leach_sf_clustering(self.coordinates(), n_clusters=3, seed=0)
        head = clustering.head_of("n0")
        assert head in clustering.members(clustering.cluster_of("n0"))

    def test_empty_coordinates_rejected(self):
        with pytest.raises(OptimizationError):
            leach_sf_clustering({})

    def test_n_clusters_clamped(self):
        coords = {f"n{i}": np.array([float(i), 0.0]) for i in range(3)}
        clustering = leach_sf_clustering(coords, n_clusters=10, seed=0)
        assert len(clustering.heads) <= 3
