"""Cl-SF and Cl-Tree-SF baselines and the registry."""

import pytest

from repro.baselines.cluster_sf import ClusterSfPlacement
from repro.baselines.cluster_tree_sf import ClusterTreeSfPlacement
from repro.baselines.registry import available_baselines, make_baseline
from repro.common.errors import OptimizationError
from repro.workloads.running_example import build_running_example
from repro.workloads.synthetic import synthetic_opp_workload
from repro.topology.latency import DenseLatencyMatrix


@pytest.fixture(scope="module")
def example():
    return build_running_example()


class TestClusterSf:
    def test_same_cluster_pairs_go_to_head(self, example):
        strategy = ClusterSfPlacement(n_clusters=2, seed=0)
        placement = strategy.place(example.topology, example.plan, example.matrix, example.latency)
        clustering = strategy.last_clustering
        for sub in placement.sub_replicas:
            left_cluster = clustering.cluster_of(sub.left_node)
            right_cluster = clustering.cluster_of(sub.right_node)
            if left_cluster == right_cluster:
                assert sub.node_id == clustering.heads[left_cluster]
            else:
                assert sub.node_id == sub.sink_node

    def test_works_on_coordinate_topology(self):
        workload = synthetic_opp_workload(60, seed=2)
        strategy = ClusterSfPlacement(seed=0)
        placement = strategy.place(workload.topology, workload.plan, workload.matrix)
        assert placement.replica_count() == workload.matrix.num_pairs()


class TestClusterTreeSf:
    def test_hosts_are_heads_or_sink(self, example):
        strategy = ClusterTreeSfPlacement(n_clusters=3, seed=0)
        placement = strategy.place(example.topology, example.plan, example.matrix, example.latency)
        heads = set(strategy.last_clustering.heads.values())
        allowed = heads | {"sink"}
        for sub in placement.sub_replicas:
            assert sub.node_id in allowed

    def test_parent_maps_retained(self, example):
        strategy = ClusterTreeSfPlacement(n_clusters=3, seed=0)
        strategy.place(example.topology, example.plan, example.matrix, example.latency)
        assert strategy.last_parents_by_sink


class TestRegistry:
    def test_all_six_baselines_registered(self):
        assert available_baselines() == [
            "sink-based",
            "source-based",
            "top-c",
            "tree",
            "cl-sf",
            "cl-tree-sf",
        ]

    def test_make_baseline(self):
        strategy = make_baseline("sink-based")
        assert strategy.name == "sink-based"

    def test_unknown_baseline(self):
        with pytest.raises(OptimizationError):
            make_baseline("quantum")

    @pytest.mark.parametrize("name", available_baselines())
    def test_every_baseline_places_running_example(self, name, example):
        placement = make_baseline(name).place(
            example.topology, example.plan, example.matrix, example.latency
        )
        assert placement.replica_count() == 4
        for sub in placement.sub_replicas:
            assert sub.node_id in example.topology
