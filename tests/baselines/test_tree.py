"""The MST tree baseline."""

import numpy as np
import pytest

from repro.baselines.tree import (
    TreePlacement,
    meeting_node,
    mst_parent_map,
    path_to_root,
    tree_path_latency,
)
from repro.common.errors import TopologyError
from repro.topology.latency import DenseLatencyMatrix
from repro.workloads.running_example import build_running_example


def star_matrix():
    """hub at distance 1 from each of three leaves; leaves mutually at 10."""
    ids = ["hub", "a", "b", "c"]
    matrix = np.full((4, 4), 10.0)
    matrix[0, :] = matrix[:, 0] = 1.0
    np.fill_diagonal(matrix, 0.0)
    return DenseLatencyMatrix(ids, matrix)


class TestMstParentMap:
    def test_star_tree_rooted_at_leaf(self):
        parents = mst_parent_map(star_matrix(), root="a")
        # MST is the star; rooted at a, the hub's parent is a.
        assert parents["hub"] == "a"
        assert parents["b"] == "hub"
        assert parents["c"] == "hub"
        assert "a" not in parents

    def test_path_to_root(self):
        parents = mst_parent_map(star_matrix(), root="a")
        assert path_to_root("b", parents) == ["b", "hub", "a"]
        assert path_to_root("a", parents) == ["a"]

    def test_meeting_node(self):
        parents = mst_parent_map(star_matrix(), root="a")
        assert meeting_node("b", "c", parents) == "hub"
        assert meeting_node("b", "hub", parents) == "hub"
        assert meeting_node("b", "b", parents) == "b"

    def test_tree_path_latency(self):
        parents = mst_parent_map(star_matrix(), root="a")
        assert tree_path_latency("b", "c", parents, star_matrix()) == pytest.approx(2.0)
        assert tree_path_latency("b", "a", parents, star_matrix()) == pytest.approx(2.0)
        assert tree_path_latency("a", "a", parents, star_matrix()) == 0.0


class TestTreePlacement:
    def test_join_at_path_intersection(self):
        example = build_running_example()
        strategy = TreePlacement()
        placement = strategy.place(example.topology, example.plan, example.matrix, example.latency)
        assert placement.replica_count() == 4
        # Region-2 sources route through base2 toward the sink; the meeting
        # node lies in region 2's branch, not at a region-1 node.
        region2 = [s for s in placement.sub_replicas if s.left_source in ("t3", "t4")]
        for sub in region2:
            assert sub.node_id in {"base2", "G", "F", "D", "base1", "sink"}

    def test_parent_maps_retained_for_evaluation(self):
        example = build_running_example()
        strategy = TreePlacement()
        strategy.place(example.topology, example.plan, example.matrix, example.latency)
        assert "sink" in strategy.last_parents_by_root

    def test_latency_defaults_from_topology(self):
        example = build_running_example()
        placement = TreePlacement().place(example.topology, example.plan, example.matrix)
        assert placement.replica_count() == 4
